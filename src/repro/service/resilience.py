"""Resilient shard dispatch: retry, re-partition, degrade, checkpoint.

PR 1's scheduler knew one trick: catch a :class:`LaunchError` around the
*whole* job and rerun it once on the CPU, discarding every completed GPU
shard.  This module replaces that with a shard-level degradation ladder
driven by a :class:`RetryPolicy`:

1. **Retry same device** - up to ``max_device_retries`` times with
   exponential backoff and deterministic jitter, under a per-job
   ``retry_budget``.
2. **Re-partition** - the failed chunk alone is residue-split across the
   surviving devices; completed shards are never recomputed.
3. **CPU fallback for the residual shard only** - the reference batch
   scorer finishes what no device could (scores are bit-identical by
   the paper's accuracy-preservation property).

Failures feed the :class:`~repro.service.devices.DeviceSlot` health
state machine (healthy -> degraded -> quarantined with exponentially
growing cooldowns and reintegration probes), every recovery step lands
in a deterministic :class:`~repro.service.faults.ResilienceEvent` log,
and a :class:`RunJournal` checkpoints completed jobs so a killed batch
run resumes without recomputing finished work.

The invariant all of this preserves: faults may change throughput
accounting, device health and the event log - they never change the
reported hits.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..cpu.msv_reference import msv_score_batch
from ..cpu.results import FilterScores
from ..cpu.viterbi_reference import viterbi_score_batch
from ..errors import (
    DeadlineError,
    DeadlineExceeded,
    KernelError,
    LaunchError,
    PipelineError,
    ShardIntegrityError,
    SlowShardError,
)
from ..gpu.counters import KernelCounters
from ..gpu.multi_gpu import score_chunk
from ..obs.profiling import kernel_tags, record_kernel_counters
from ..obs.span import span
from ..sequence.database import SequenceDatabase
from .devices import DeviceHealth, DevicePool, DeviceSlot
from .faults import FaultKind, FaultPlan, ResilienceEvent
from .watchdog import Deadline, ShardWatchdog

__all__ = ["RetryPolicy", "ResilientExecutor", "RunJournal", "result_digest"]

# Transient shard failures the degradation ladder absorbs.  Anything
# else (a programming error, an invalid profile) propagates unchanged.
TRANSIENT_FAULTS = (LaunchError, KernelError, DeadlineError, ShardIntegrityError)

# Deterministic score perturbation applied by an injected CORRUPT fault:
# every score is biased and every overflow flag flipped, so the shard
# checksum probe detects the corruption no matter which rows it samples.
_CORRUPTION_BIAS = 3.25

_FAULT_BY_ERROR = {
    LaunchError: FaultKind.LAUNCH.value,
    KernelError: FaultKind.KERNEL.value,
    DeadlineError: FaultKind.HANG.value,
    SlowShardError: FaultKind.SLOW.value,
    ShardIntegrityError: FaultKind.CORRUPT.value,
}

# An injected SLOW fault stalls the shard this far past its watchdog
# budget, so the watchdog always cancels it (the margin keeps the test
# signal unambiguous against float comparison).
_SLOW_STALL_FACTOR = 1.25

# Reference scorers used for shard- and stage-level CPU fallback; the
# stage name is the executor-hook contract with HmmsearchPipeline.
_CPU_STAGE_SCORERS: dict[str, Callable[..., FilterScores]] = {
    "msv": msv_score_batch,
    "p7viterbi": viterbi_score_batch,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the degradation ladder and the device health machine.

    Backoff for retry ``k`` (1-based) is
    ``backoff_base * backoff_multiplier**(k-1)`` scaled by a
    deterministic jitter in ``[1, 1 + backoff_jitter)`` derived from
    ``(seed, key, attempt)`` - no wall clock, no shared RNG state, so
    identical runs log identical backoffs.
    """

    max_device_retries: int = 2      # same-device retries per shard
    retry_budget: int = 8            # total retries per job (all stages)
    backoff_base: float = 0.05       # seconds before the first retry
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.25     # max fractional jitter on top
    stage_deadline: float = 30.0     # watchdog deadline (simulated seconds)
    quarantine_after: int = 3        # consecutive strikes -> quarantine
    cooldown: int = 4                # quarantine cooldown, in pool ticks
    cooldown_multiplier: float = 2.0
    verify_shards: bool = True       # checksum-probe every GPU shard
    seed: int = 0                    # jitter seed

    def __post_init__(self) -> None:
        if self.max_device_retries < 0:
            raise PipelineError("max_device_retries must be >= 0")
        if self.retry_budget < 0:
            raise PipelineError("retry_budget must be >= 0")
        if self.backoff_base < 0 or self.backoff_jitter < 0:
            raise PipelineError("backoff parameters must be non-negative")
        if self.quarantine_after < 1:
            raise PipelineError("quarantine_after must be >= 1")

    def backoff_seconds(self, attempt: int, key: str) -> float:
        """Deterministically jittered exponential backoff for a retry."""
        base = self.backoff_base * self.backoff_multiplier ** max(
            0, attempt - 1
        )
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.backoff_jitter * frac)


class ResilientExecutor:
    """Stage executor with per-shard fault recovery.

    Drop-in for :class:`~repro.service.scheduler.PoolExecutor` via the
    pipeline's ``executor`` hook, but each device's shard is attempted,
    verified and - on transient failure - retried, re-partitioned or
    CPU-degraded *independently*, so one bad device no longer discards
    the whole stage.  Injected faults come from an optional
    :class:`~repro.service.faults.FaultPlan`; armed slot faults
    (:meth:`DeviceSlot.inject_fault`) are absorbed by the same ladder.

    ``sleep`` is the backoff *and stall* actuator and ``clock`` the
    matching monotonic timebase; both default to ``None`` (record
    computed delays in the event log without sleeping) so tests and the
    simulated service stay fast and deterministic.  The scheduler wires
    them to its shared virtual timeline
    (:class:`~repro.service.watchdog.VirtualClock`), on which injected
    hangs, slow-shard stalls and retry backoffs all consume a ``deadline``
    budget while honest work is free - matching the cost model's frame
    of reference (modelled device seconds, not Python wall time).

    The hung-shard ``watchdog`` is always armed (pass your own to tune
    the multiplier): every shard's elapsed timeline seconds are compared
    against ``k x`` its cost-model prediction, and an over-budget shard
    is cancelled with :class:`~repro.errors.SlowShardError` - a
    transient fault the ladder absorbs like any other.
    """

    def __init__(
        self,
        pool: DevicePool,
        plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        stats=None,
        job_id: str | None = None,
        sort_chunks: bool = True,
        sleep: Callable[[float], None] | None = None,
        tracer=None,
        clock: Callable[[], float] | None = None,
        watchdog: ShardWatchdog | None = None,
        deadline: Deadline | None = None,
        checkpoint=None,
    ) -> None:
        self.pool = pool
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = stats
        self.job_id = job_id
        self.sort_chunks = sort_chunks
        self.sleep = sleep
        self.tracer = tracer
        self.clock = clock
        self.watchdog = watchdog if watchdog is not None else ShardWatchdog()
        self.deadline = deadline
        self.checkpoint = checkpoint  # ShardCheckpoint | None
        self.stage_dispatches = 0
        self.failed_dispatches = 0
        self.retries_left = self.policy.retry_budget
        self.resumed_units = 0       # shards served from the journal
        self.recomputed_units = 0    # shards executed live under a journal

    # -- event log -----------------------------------------------------------

    def _emit(self, kind: str, **kw) -> ResilienceEvent:
        event = ResilienceEvent(kind=kind, job_id=self.job_id, **kw)
        if self.stats is not None:
            self.stats.record(event)
        return event

    # -- the executor hook ---------------------------------------------------

    def score_stage(
        self, name, kernel, profile, database, *, config, counters=None
    ):
        if self.deadline is not None:
            self.deadline.check(f"stage {name} entry")
        self.pool.advance()
        slots = self.pool.serviceable_slots(len(database))
        n = len(database)
        scores = np.empty(n, dtype=np.float64)
        overflowed = np.empty(n, dtype=bool)
        with span(
            self.tracer, f"dispatch:{name}", "schedule",
            stage=name, devices=len(slots), pool=self.pool.name,
        ):
            if not slots:
                # every device quarantined and cooling down: the stage
                # itself degrades to the reference scorer (checkpointed
                # as a single stage-wide unit)
                self._emit(
                    "cpu_stage", stage=name,
                    detail=f"all {self.pool.size} devices quarantined",
                )
                part = self._checkpointed(
                    name, profile, database,
                    lambda: self._cpu_scores(name, profile, database),
                )
                scores[:] = part.scores
                overflowed[:] = part.overflowed
                self.stage_dispatches += 1
                return FilterScores(scores=scores, overflowed=overflowed)
            chunks = database.chunk_by_residues(len(slots))
            offset = 0
            for shard_no, (chunk, slot) in enumerate(zip(chunks, slots)):
                if self.deadline is not None:
                    self.deadline.check(f"{name} shard {shard_no}")
                with span(
                    self.tracer, f"shard{shard_no}", "shard",
                    device=slot.spec.name, stage=name,
                ) as sh:
                    part = self._checkpointed(
                        name, profile, chunk,
                        lambda: self._score_shard(
                            name, kernel, profile, chunk, slot, config,
                            counters, peers=slots,
                        ),
                    )
                    if sh is not None:
                        sh.count(
                            sequences=len(chunk),
                            residues=chunk.total_residues,
                        )
                m = len(chunk)
                scores[offset : offset + m] = part.scores
                overflowed[offset : offset + m] = part.overflowed
                offset += m
            self.stage_dispatches += 1
        return FilterScores(scores=scores, overflowed=overflowed)

    # -- shard-granular checkpointing ----------------------------------------

    def _checkpointed(
        self, name, profile, chunk, compute: Callable[[], FilterScores]
    ) -> FilterScores:
        """Serve one work unit from the journal, or run it and journal it.

        A journal hit is *exactly-once resume*: the stored bit-exact
        scores are returned without touching a device, and the unit is
        never re-recorded (so the journal's duplicate counter stays
        zero).  A miss runs ``compute`` - the full degradation ladder -
        and durably commits the result before the stage moves on, which
        makes every shard boundary a crash-consistent journal epoch.
        """
        if self.checkpoint is None:
            return compute()
        key = self.checkpoint.shard_key(name, profile, chunk)
        part = self.checkpoint.lookup(key, len(chunk))
        if part is not None:
            self.resumed_units += 1
            self._emit(
                "resume_shard", stage=name,
                detail=(
                    f"shard of {len(chunk)} restored from the journal "
                    f"(key {key[:12]})"
                ),
            )
            return part
        part = compute()
        self.recomputed_units += 1
        self.checkpoint.commit(key, name, part)
        return part

    # -- the degradation ladder ----------------------------------------------

    def _score_shard(
        self, name, kernel, profile, chunk, slot, config, counters,
        peers, allow_repartition: bool = True,
    ) -> FilterScores:
        if slot.health is DeviceHealth.QUARANTINED:
            self._emit(
                "probe", stage=name, device=slot.index,
                detail=f"reintegration probe after quarantine "
                       f"#{slot.quarantines}",
            )
        attempt = 0
        while True:
            attempt += 1
            try:
                part = self._attempt(
                    name, kernel, profile, chunk, slot, config, counters
                )
            except TRANSIENT_FAULTS as exc:
                fault = _FAULT_BY_ERROR.get(type(exc), "launch")
                self._emit(
                    "fault", stage=name, device=slot.index,
                    attempt=attempt, fault=fault, detail=str(exc),
                )
                quarantined = slot.mark_failure(
                    self.pool.tick,
                    quarantine_after=self.policy.quarantine_after,
                    cooldown=self.policy.cooldown,
                    cooldown_multiplier=self.policy.cooldown_multiplier,
                )
                if quarantined:
                    self._emit(
                        "quarantine", stage=name, device=slot.index,
                        detail=f"cooldown until tick {slot.cooldown_until}",
                    )
                if (
                    not quarantined
                    and attempt <= self.policy.max_device_retries
                    and self.retries_left > 0
                ):
                    self.retries_left -= 1
                    delay = self.policy.backoff_seconds(
                        attempt, key=f"{self.job_id}:{name}:{slot.index}"
                    )
                    if (
                        self.deadline is not None
                        and delay > self.deadline.remaining()
                    ):
                        # fail fast: the backoff alone would sleep past
                        # the job's deadline - no point burning a retry
                        self._emit(
                            "deadline", stage=name, device=slot.index,
                            attempt=attempt, backoff=delay,
                            detail=(
                                f"backoff {delay:.4f}s exceeds remaining "
                                f"budget {self.deadline.remaining():.4f}s"
                            ),
                        )
                        raise DeadlineExceeded(
                            f"job {self.job_id or ''} deadline: the "
                            f"{delay:.4f}s retry backoff for {name} on "
                            f"device {slot.index} exceeds the remaining "
                            f"{self.deadline.remaining():.4f}s budget"
                        ) from exc
                    self._emit(
                        "retry", stage=name, device=slot.index,
                        attempt=attempt, backoff=delay,
                    )
                    if self.sleep is not None:
                        self.sleep(delay)
                    if self.deadline is not None:
                        self.deadline.check(f"{name} retry backoff")
                    continue
                return self._escalate(
                    name, kernel, profile, chunk, slot, config, counters,
                    peers, allow_repartition,
                )
            if slot.mark_success():
                self._emit(
                    "reintegrate", stage=name, device=slot.index,
                    detail="probe succeeded, device healthy again",
                )
            return part

    def _shard_budget(self, name, profile, chunk, spec) -> float:
        """The watchdog's cancel threshold (= detection period) for a shard."""
        return self.watchdog.budget(
            name, getattr(profile, "M", 0),
            chunk.total_residues, len(chunk), spec,
        )

    def _attempt(
        self, name, kernel, profile, chunk, slot, config, counters
    ) -> FilterScores:
        spec = slot.checkout()
        try:
            fault = self.plan.draw(slot.index) if self.plan is not None else None
            if fault is FaultKind.LAUNCH:
                raise LaunchError(
                    f"injected launch failure on device {slot.index} "
                    f"({spec.name})"
                )
            if fault is FaultKind.HANG:
                # the simulated device stopped responding; detection
                # costs one watchdog period of timeline before the
                # stage watchdog trips its deadline
                if self.sleep is not None:
                    self.sleep(self._shard_budget(name, profile, chunk, spec))
                raise DeadlineError(
                    f"device {slot.index} ({spec.name}) exceeded the "
                    f"{self.policy.stage_deadline:g}s stage deadline "
                    "(simulated hang)"
                )
            if fault is FaultKind.KERNEL:
                raise KernelError(
                    f"transient kernel fault injected on device {slot.index}"
                )
            started = self.clock() if self.clock is not None else None
            stall = 0.0
            if fault is FaultKind.SLOW:
                # the shard will complete, but only after stalling past
                # its cost-model budget; the watchdog below cancels it
                stall = _SLOW_STALL_FACTOR * self._shard_budget(
                    name, profile, chunk, spec
                )
                if self.sleep is not None:
                    self.sleep(stall)
            c = KernelCounters()
            with span(
                self.tracer, f"{name}@{spec.name}", "kernel",
                **kernel_tags(
                    name, getattr(profile, "M", 0), config, spec
                ),
            ) as ks:
                part = score_chunk(
                    kernel, profile, chunk, spec,
                    sort=self.sort_chunks, counters=c, config=config,
                )
                record_kernel_counters(ks, c)
            if fault is FaultKind.CORRUPT:
                part = FilterScores(
                    scores=part.scores + _CORRUPTION_BIAS,
                    overflowed=~part.overflowed,
                )
            # hung-shard watchdog: elapsed *timeline* seconds (injected
            # stalls and backoff sleeps; honest work is free) against
            # k x the cost-model prediction.  An over-budget shard is
            # cancelled even though it technically completed.
            elapsed = (
                self.clock() - started if started is not None else stall
            )
            self.watchdog.observe(
                name, getattr(profile, "M", 0),
                chunk.total_residues, len(chunk), spec,
                elapsed, device_index=slot.index,
            )
            if self.policy.verify_shards:
                self._verify_shard(
                    name, kernel, profile, chunk, part, slot, spec, config
                )
            slot.record(len(chunk), chunk.total_residues, c)
            if counters is not None:
                counters.merge(c)
            return part
        finally:
            slot.release()

    def _verify_shard(
        self, name, kernel, profile, chunk, part, slot, spec, config
    ) -> None:
        """Cheap shard checksum: re-score a 3-row probe and compare.

        Kernels are deterministic and score sequences independently, so
        any honest shard reproduces its probe rows exactly; a corrupted
        shard (scores biased, overflow flags flipped) cannot.  Probe
        counters are deliberately not merged - verification overhead is
        not device work.
        """
        n = len(chunk)
        idx = sorted({0, n // 2, n - 1})
        probe = kernel(
            profile, chunk.subset(idx), device=spec,
            counters=KernelCounters(), config=config,
        )
        if not np.array_equal(probe.scores, part.scores[idx]) or not (
            np.array_equal(probe.overflowed, part.overflowed[idx])
        ):
            raise ShardIntegrityError(
                f"shard checksum mismatch on device {slot.index}: "
                f"recomputed probe rows {idx} disagree with the "
                "returned scores"
            )

    def _escalate(
        self, name, kernel, profile, chunk, slot, config, counters,
        peers, allow_repartition,
    ) -> FilterScores:
        if allow_repartition:
            survivors = [
                s for s in peers
                if s is not slot and s.available(self.pool.tick)
            ]
            if survivors:
                k = min(len(survivors), len(chunk))
                self._emit(
                    "repartition", stage=name, device=slot.index,
                    detail=(
                        f"chunk of {len(chunk)} re-split across "
                        f"{k} surviving device(s)"
                    ),
                )
                parts = [
                    self._score_shard(
                        name, kernel, profile, sub, peer, config, counters,
                        peers, allow_repartition=False,
                    )
                    for sub, peer in zip(
                        chunk.chunk_by_residues(k), survivors
                    )
                ]
                return FilterScores(
                    scores=np.concatenate([p.scores for p in parts]),
                    overflowed=np.concatenate([p.overflowed for p in parts]),
                )
        self._emit(
            "cpu_fallback", stage=name, device=slot.index,
            detail=f"residual shard of {len(chunk)} scored on the CPU",
        )
        return self._cpu_scores(name, profile, chunk)

    def _cpu_scores(
        self, name: str, profile, database: SequenceDatabase
    ) -> FilterScores:
        scorer = _CPU_STAGE_SCORERS.get(name)
        if scorer is None:
            raise PipelineError(
                f"no CPU fallback scorer for stage {name!r}"
            )
        with span(
            self.tracer, f"{name}@cpu_fallback", "kernel",
            stage=name, engine="cpu_sse",
        ) as ks:
            part = scorer(profile, database)
            if ks is not None:
                ks.count(
                    rows=database.total_residues, sequences=len(database)
                )
        return part


# -- checkpoint / resume -----------------------------------------------------


def result_digest(results) -> str:
    """Stable digest of a job's reported hits (names, E-values, targets).

    Two runs that report the same hits - the resilience invariant -
    produce the same digest, making journals diffable across chaos and
    fault-free runs.
    """
    h = hashlib.sha256()
    h.update(str(results.n_targets).encode())
    for hit in results.hits:
        h.update(hit.name.encode())
        h.update(np.float64(hit.evalue).tobytes())
    return h.hexdigest()


class RunJournal:
    """Append-only JSONL checkpoint of completed batch jobs.

    One line per finished job::

        {"job_id": ..., "state": "done", "digest": ..., "n_targets": ...,
         "n_hits": ..., "effective_engine": ..., "query": ..., "database": ...}

    Lines are flushed as they are written, so a crash loses at most the
    in-flight job.  On load, a truncated trailing line (the crash
    artifact) is tolerated and dropped.  ``resume=True`` loads existing
    entries so the scheduler can skip jobs already marked done;
    ``resume=False`` truncates and starts a fresh run.
    """

    def __init__(self, path: str | Path, resume: bool = True) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        if resume and self.path.exists():
            self._load()
        elif self.path.exists():
            self.path.unlink()

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated trailing line from a crash
            job_id = entry.get("job_id")
            if isinstance(job_id, str):
                self._entries[job_id] = entry

    def completed(self, job_id: str) -> dict | None:
        """The journal entry for a finished job, or None."""
        entry = self._entries.get(job_id)
        if entry is not None and entry.get("state") == "done":
            return entry
        return None

    def record(self, job) -> dict:
        """Checkpoint one finished job (call after state becomes DONE)."""
        results = job.results
        entry = {
            "job_id": job.job_id,
            "state": job.state.value,
            "digest": result_digest(results) if results is not None else "",
            "n_targets": results.n_targets if results is not None else 0,
            "n_hits": len(results.hits) if results is not None else 0,
            "effective_engine": job.effective_engine.value,
            "query": job.hmm.name,
            "database": job.database.name,
        }
        self._entries[job.job_id] = entry
        with self.path.open("a") as fh:
            fh.write(json.dumps(entry) + "\n")
            fh.flush()
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._entries

    def __repr__(self) -> str:
        return f"RunJournal({str(self.path)!r}, entries={len(self._entries)})"
