"""Search jobs and the priority queue that feeds the scheduler.

A :class:`SearchJob` is one (query HMM, target database) request with an
engine choice, stage thresholds and pipeline settings.  Jobs are minted
by :class:`JobQueue.submit` with **deterministic ids**: a monotonically
increasing submission number combined with a content fingerprint of the
query/database/engine, so re-running the same manifest yields the same
ids (and logs/metrics are diffable across runs).

The queue orders by ``(-priority, submission order)``: higher priority
first, FIFO among equals.  It is a synchronous core - ``pop`` never
blocks - which the scheduler drains in a simple loop today and an async
worker pool can drain concurrently later without changing job semantics.

With an :class:`~repro.service.admission.AdmissionController` attached
the queue is *bounded*: every submission is priced through the cost
model before a job is minted, and an over-watermark submission raises
:class:`~repro.errors.OverloadError` without ever entering the heap -
rejected work cannot partially execute because it never exists as a job.
"""

from __future__ import annotations

import enum
import hashlib
import heapq
import threading
from dataclasses import dataclass, field

from .. import engines
from ..errors import PipelineError
from ..hmm.plan7 import Plan7HMM
from ..options import Engine, PipelineThresholds, SearchOptions
from ..pipeline.results import SearchResults
from ..sequence.database import SequenceDatabase
from .cache import PipelineSettings, hmm_fingerprint

__all__ = ["JobState", "SearchJob", "JobQueue", "job_fingerprint"]


class JobState(enum.Enum):
    """Lifecycle of a job: PENDING -> RUNNING -> DONE | FAILED."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class SearchJob:
    """One queued hmmsearch request plus its mutable execution record."""

    job_id: str
    hmm: Plan7HMM
    database: SequenceDatabase
    engine: Engine = Engine.GPU_WARP
    priority: int = 0
    thresholds: PipelineThresholds | None = None
    settings: PipelineSettings = field(default_factory=PipelineSettings)
    options: SearchOptions | None = None     # per-job override of the
                                             # scheduler's SearchOptions
    estimate: object | None = None           # CostEstimate when admission
                                             # control priced this job

    # -- filled in by the scheduler --
    state: JobState = JobState.PENDING
    results: SearchResults | None = None
    error: str | None = None
    attempts: int = 0
    fallback_engine: Engine | None = None    # set when a retry degraded
    resumed: bool = False                    # restored from a run journal
    submitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def queue_latency(self) -> float | None:
        """Seconds between submission and the scheduler picking it up."""
        if self.submitted_at is None or self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def effective_engine(self) -> Engine:
        """The engine that actually produced the results."""
        return self.fallback_engine or self.engine

    def response(self) -> dict:
        """JSON-safe job response (the service wire format)."""
        data = {
            "job_id": self.job_id,
            "query": self.hmm.name,
            "database": self.database.name,
            "engine": self.engine.value,
            "effective_engine": self.effective_engine.value,
            "state": self.state.value,
            "priority": self.priority,
            "attempts": self.attempts,
            "resumed": self.resumed,
            "error": self.error,
        }
        if self.results is not None:
            data["results"] = self.results.to_dict(include_scores=False)
        return data

    def __repr__(self) -> str:
        return (
            f"SearchJob({self.job_id!r}, query={self.hmm.name!r}, "
            f"db={self.database.name!r}, engine={self.engine.value}, "
            f"state={self.state.value})"
        )


def job_fingerprint(
    hmm: Plan7HMM, database: SequenceDatabase, engine: Engine
) -> str:
    """Content fingerprint of one (query, database, engine) submission.

    The durable-execution layer keys journal entries by this hash, so a
    resumed run only trusts checkpoints whose submission content is
    bit-identical to what it is about to execute - an edited manifest or
    swapped database invalidates stale entries by construction.
    """
    h = hashlib.sha256()
    h.update(hmm_fingerprint(hmm).encode())
    h.update(database.name.encode())
    h.update(str(len(database)).encode())
    h.update(str(database.total_residues).encode())
    h.update(engine.value.encode())
    return h.hexdigest()


# Backward-compatible private alias (pre-durability callers).
_job_fingerprint = job_fingerprint


class JobQueue:
    """Priority queue of :class:`SearchJob` with deterministic ids."""

    def __init__(self, admission=None) -> None:
        self._lock = threading.RLock()
        self._heap: list[tuple[int, int, SearchJob]] = []  # guarded-by: _lock
        self._serial = 0    # guarded-by: _lock
        self.submitted = 0  # guarded-by: _lock
        self.admission = admission  # AdmissionController | None

    def submit(
        self,
        hmm: Plan7HMM,
        database: SequenceDatabase,
        engine: Engine = Engine.GPU_WARP,
        priority: int = 0,
        thresholds: PipelineThresholds | None = None,
        settings: PipelineSettings | None = None,
        clock: float | None = None,
        job_id: str | None = None,
        options: SearchOptions | None = None,
    ) -> SearchJob:
        """Mint a job and enqueue it; returns the job (with its id).

        Ids default to ``job-<serial>-<content fingerprint>`` - stable
        across reruns of the same submission sequence.  An explicit
        ``job_id`` (e.g. a manifest's ``id`` field) is used verbatim,
        which makes checkpoint journals robust to manifest edits.

        When admission control is attached, the submission is priced and
        admitted *before* the job is minted: a rejected or shed
        submission raises :class:`~repro.errors.OverloadError` and
        leaves the queue (and the serial counter) untouched.
        """
        engine = engines.resolve(engine)
        estimate = None
        if self.admission is not None:
            estimate = self.admission.admit(
                hmm, database, engine=engine, priority=priority
            )
        with self._lock:
            serial = self._serial
            self._serial += 1
            self.submitted += 1
            job = SearchJob(
                job_id=job_id if job_id is not None else (
                    f"job-{serial:04d}-"
                    f"{_job_fingerprint(hmm, database, engine)[:8]}"
                ),
                hmm=hmm,
                database=database,
                engine=engine,
                priority=priority,
                thresholds=thresholds,
                settings=settings or PipelineSettings(),
                options=options,
                estimate=estimate,
                submitted_at=clock,
            )
            heapq.heappush(self._heap, (-priority, serial, job))
            return job

    def pop(self) -> SearchJob | None:
        """Highest-priority pending job (FIFO among equals), or None."""
        with self._lock:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def requeue(self, job: SearchJob) -> None:
        """Put a job back (e.g. after a transient scheduling failure)."""
        if job.state is JobState.DONE:
            raise PipelineError(f"cannot requeue finished job {job.job_id}")
        with self._lock:
            serial = self._serial
            self._serial += 1
            job.state = JobState.PENDING
            heapq.heappush(self._heap, (-job.priority, serial, job))

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._heap)

    def pending(self) -> list[SearchJob]:
        """Pending jobs in pop order (non-destructive)."""
        with self._lock:
            return [item[2] for item in sorted(self._heap)]
