"""Manifest files: how the CLI feeds job batches to the service.

A manifest is a JSON file describing many (query model, target
database) jobs::

    {
      "jobs": [
        {"model": "globins.hmm", "database": "targets.fasta"},
        {"id": "globins-cpu", "model": "globins.hmm",
         "database": "targets.fasta",
         "engine": "cpu", "priority": 5, "length": 250}
      ]
    }

A bare top-level list is accepted too.  Paths are resolved relative to
the manifest's directory.  Repeated ``model`` entries are the point:
they exercise the pipeline cache exactly like repeat queries against a
live service.

An optional ``id`` per job names it explicitly (must be unique across
the manifest); explicit ids make checkpoint journals
(``repro-hmmsearch batch --journal ... --resume``) robust to manifest
edits, because the default ids embed the submission serial.

Validation is strict and *up front*: duplicate ids and model/database
paths that do not exist are rejected with a
:class:`~repro.errors.FormatError` naming the offending job index and
path before any job is loaded or submitted.
"""

from __future__ import annotations

import json
from pathlib import Path

from .. import engines
from ..errors import FormatError, QuarantineError, UnknownEngineError
from ..hardening import STRICT, IngestPolicy, RecordQuarantine
from ..hmm.hmmfile import load_hmm
from ..sequence.fasta import read_fasta
from .cache import PipelineSettings
from .job import SearchJob

__all__ = ["load_manifest", "submit_manifest", "validate_manifest_paths"]


def load_manifest(path: str | Path) -> list[dict]:
    """Parse and validate a manifest into normalized job dicts."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"manifest {path}: invalid JSON ({exc})") from exc
    jobs = data.get("jobs") if isinstance(data, dict) else data
    if not isinstance(jobs, list) or not jobs:
        raise FormatError(
            f"manifest {path}: expected a non-empty job list "
            "(top-level or under 'jobs')"
        )
    normalized = []
    seen_ids: dict[str, int] = {}
    for i, entry in enumerate(jobs):
        if not isinstance(entry, dict):
            raise FormatError(f"manifest {path}: job {i} is not an object")
        for key in ("model", "database"):
            if key not in entry:
                raise FormatError(
                    f"manifest {path}: job {i} is missing {key!r}"
                )
        engine = entry.get("engine", "gpu")
        try:
            # any registered engine name, alias, or per-stage
            # "stage=name,..." mapping string is a valid manifest entry
            engines.resolve(engine)
        except (UnknownEngineError, TypeError) as exc:
            raise FormatError(
                f"manifest {path}: job {i} has unknown engine {engine!r} "
                f"({exc})"
            ) from exc
        job_id = entry.get("id")
        if job_id is not None:
            if not isinstance(job_id, str) or not job_id.strip():
                raise FormatError(
                    f"manifest {path}: job {i} has an invalid id "
                    f"{job_id!r} (expected a non-empty string)"
                )
            if job_id in seen_ids:
                raise FormatError(
                    f"manifest {path}: job {i} reuses id {job_id!r} "
                    f"(first used by job {seen_ids[job_id]})"
                )
            seen_ids[job_id] = i
        normalized.append(
            {
                "id": job_id,
                "model": entry["model"],
                "database": entry["database"],
                "engine": engine,
                "priority": int(entry.get("priority", 0)),
                "length": entry.get("length"),
            }
        )
    return normalized


def validate_manifest_paths(
    entries: list[dict], base: Path, manifest_path: Path
) -> None:
    """Reject nonexistent model/database paths before anything loads.

    Failing fast - naming the job index and the resolved path - beats a
    mid-batch crash after hours of completed jobs.
    """
    for i, entry in enumerate(entries):
        for key in ("model", "database"):
            resolved = (base / entry[key]).resolve()
            if not resolved.exists():
                raise FormatError(
                    f"manifest {manifest_path}: job {i} references a "
                    f"nonexistent {key} path {resolved}"
                )


def _salvage_load(loader, path: Path, policy: IngestPolicy, quarantine):
    """Load one input file; salvage turns load failures into quarantine
    entries (and ``None``) instead of exceptions."""
    try:
        return loader(path, policy=policy, quarantine=quarantine)
    except (FormatError, QuarantineError, OSError) as exc:
        if not policy.salvage:
            raise
        quarantine.add(str(path), 0, "", str(exc), kind="manifest")
        return None


def submit_manifest(
    service,
    manifest_path: str | Path,
    default_length: int = 400,
    calibration_filter_sample: int = 400,
    calibration_forward_sample: int = 120,
    policy: IngestPolicy = STRICT,
    quarantine: RecordQuarantine | None = None,
) -> list[SearchJob]:
    """Submit every manifest job to a :class:`BatchSearchService`.

    Each model/database file is read once per distinct path; the
    pipeline cache then dedupes by *content*, so a model repeated under
    two paths still calibrates once.

    Under a salvage ``policy``, malformed records inside each input are
    skipped-and-quarantined by the parsers, and a job whose model or
    database is unusable (missing path, unparseable model, no surviving
    records) is itself quarantined (kind ``manifest``) and skipped
    instead of aborting the whole batch.  ``quarantine`` defaults to the
    service's own (``service.metrics.quarantine``).
    """
    manifest_path = Path(manifest_path)
    entries = load_manifest(manifest_path)
    base = manifest_path.parent
    if quarantine is None:
        metrics = getattr(service, "metrics", None)
        quarantine = (
            metrics.quarantine if metrics is not None else RecordQuarantine()
        )
    if not policy.salvage:
        validate_manifest_paths(entries, base, manifest_path)
    models: dict[Path, object] = {}
    databases: dict[Path, object] = {}
    submitted = []
    for i, entry in enumerate(entries):
        model_path = (base / entry["model"]).resolve()
        db_path = (base / entry["database"]).resolve()
        if model_path not in models:
            models[model_path] = _salvage_load(
                load_hmm, model_path, policy, quarantine
            )
        if db_path not in databases:
            databases[db_path] = _salvage_load(
                read_fasta, db_path, policy, quarantine
            )
        if models[model_path] is None or databases[db_path] is None:
            # the parser already quarantined the broken input itself;
            # record which job it takes down with it
            quarantine.add(
                str(manifest_path), 0, entry["id"] or f"job {i}",
                f"skipped: unusable input "
                f"{model_path if models[model_path] is None else db_path}",
                kind="manifest",
            )
            continue
        settings = PipelineSettings(
            L=int(entry["length"] or default_length),
            calibration_filter_sample=calibration_filter_sample,
            calibration_forward_sample=calibration_forward_sample,
        )
        submitted.append(
            service.submit(
                models[model_path],
                databases[db_path],
                engine=engines.resolve(entry["engine"]),
                priority=entry["priority"],
                settings=settings,
                job_id=entry["id"],
            )
        )
    return submitted
