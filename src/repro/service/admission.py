"""Predictive admission control for the batch search service.

The paper's speedups come from keeping devices *saturated but not
drowned*: work arrives at a steady, predictable rate.  This module is
the service-plane analogue - a bounded front door for the
:class:`~repro.service.job.JobQueue` that prices every submission with
the same mechanistic cost model (:mod:`repro.perf.cost_model`) that
already drives memory-configuration and co-scheduling decisions, and
refuses work the backlog cannot absorb.

The flow at submit time:

1. :func:`estimate_job_cost` prices the job from ``M x residues``
   through the three-stage filter cascade (MSV over everything,
   P7Viterbi over the expected ``f1`` survivors, Forward over the
   expected ``f2`` survivors - HMMER 3.0's 0.02 / 1e-3 defaults).
2. :meth:`AdmissionController.admit` checks the bounded-queue
   watermarks in :class:`AdmissionLimits` (pending jobs, modelled
   backlog seconds, backlog residues).  Over a watermark the submission
   is **rejected** with :class:`~repro.errors.OverloadError` carrying a
   retry-after hint (the modelled backlog drain time); under pressure
   but below the hard watermark, low-priority work is **shed** instead.
3. Admitted estimates ride on the job; :meth:`AdmissionController.complete`
   returns their cost to the pool when the scheduler finishes them.

:class:`DegradationState` summarises utilisation into the documented
shedding ladder (selfcheck sampling -> tracing -> bench spans) that the
scheduler applies to per-job options, and that
``MetricsRegistry.render()`` reports.

Accounting invariant (property-tested): every submission is counted
exactly once - ``admitted + rejected + shed == submitted``.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from .. import engines
from ..errors import OverloadError, PipelineError
from ..gpu.device import DeviceSpec
from ..hmm.plan7 import Plan7HMM
from ..kernels.memconfig import Stage
from ..options import Engine, PipelineThresholds
from ..perf.calibration import DEFAULT_COSTS, CostConstants
from ..perf.cost_model import StageWork, cpu_forward_time, cpu_stage_time
from ..sequence.database import SequenceDatabase

__all__ = [
    "AdmissionLimits",
    "CostEstimate",
    "DegradationState",
    "AdmissionController",
    "estimate_job_cost",
]


class DegradationState(enum.IntEnum):
    """How much optional work the service is currently shedding.

    States are ordered by severity; each state sheds everything the
    previous one did plus one more class of optional work, in the
    documented order: selfcheck sampling first (it multiplies scoring
    work), then tracing, then bench spans.  Reported hits are never
    affected - degradation only ever drops *optional* work.
    """

    NORMAL = 0
    REDUCED = 1    # shed differential-oracle selfcheck sampling
    MINIMAL = 2    # ... and tracing
    CRITICAL = 3   # ... and bench span export

    @property
    def sheds(self) -> tuple[str, ...]:
        """The classes of optional work shed in this state, in order."""
        return ("selfcheck", "tracing", "bench")[: int(self)]


@dataclass(frozen=True)
class AdmissionLimits:
    """Watermarks for the bounded job queue.

    A limit of ``None`` disarms that watermark.  ``degrade_at`` /
    ``minimal_at`` / ``critical_at`` are fractions of the *most loaded*
    armed watermark at which the service steps down the
    :class:`DegradationState` ladder; shedding of whole submissions
    (below ``shed_below_priority``) starts at ``degrade_at``.
    """

    max_pending: int | None = 64
    max_backlog_cost: float | None = None   # modelled seconds
    max_backlog_residues: int | None = None
    shed_below_priority: int = 0
    degrade_at: float = 0.5
    minimal_at: float = 0.75
    critical_at: float = 0.9

    def __post_init__(self) -> None:
        if self.max_pending is not None and self.max_pending < 1:
            raise PipelineError("max_pending must be positive")
        if self.max_backlog_cost is not None and self.max_backlog_cost <= 0:
            raise PipelineError("max_backlog_cost must be positive")
        if (
            self.max_backlog_residues is not None
            and self.max_backlog_residues < 1
        ):
            raise PipelineError("max_backlog_residues must be positive")
        if not 0.0 < self.degrade_at <= self.minimal_at <= self.critical_at <= 1.0:
            raise PipelineError(
                "degradation thresholds must satisfy "
                "0 < degrade_at <= minimal_at <= critical_at <= 1"
            )


@dataclass(frozen=True)
class CostEstimate:
    """The modelled price of one job, computed at admission time.

    ``seconds`` is modelled *device* time (virtual-timeline seconds, the
    same unit the hung-shard watchdog budgets in), not wall time of the
    Python simulation.
    """

    seconds: float
    residues: int
    sequences: int
    M: int
    engine: str
    device: str
    stage_seconds: tuple[tuple[str, float], ...]

    def __repr__(self) -> str:
        return (
            f"CostEstimate({self.seconds:.4f}s, M={self.M}, "
            f"residues={self.residues}, engine={self.engine!r})"
        )


def _expected_rows(residues: int, fraction: float) -> int:
    """Expected surviving DP rows after a filter with pass rate ``fraction``."""
    return max(1, int(residues * fraction)) if residues > 0 else 0


def estimate_job_cost(
    hmm: Plan7HMM,
    database: SequenceDatabase,
    engine: Engine | str = Engine.GPU_WARP,
    device: DeviceSpec | None = None,
    thresholds: PipelineThresholds | None = None,
    costs: CostConstants = DEFAULT_COSTS,
) -> CostEstimate:
    """Price one (query, database) job through the filter cascade.

    MSV sees every residue; P7Viterbi the expected ``f1`` survivors;
    Forward (always CPU) the expected ``f2`` survivors.  GPU stages are
    priced with the optimal-strategy memory configuration
    (:func:`~repro.perf.cost_model.best_gpu_stage_time`); a model too
    large for any feasible configuration falls back to the CPU price
    (which is what the executor's fallback ladder would do too).
    """
    selection = engines.resolve(engine)
    th = thresholds or PipelineThresholds()
    residues = database.total_residues
    seqs = len(database)
    msv = StageWork(rows=residues, seqs=seqs, M=hmm.M)
    vit_rows = _expected_rows(residues, th.f1)
    vit_seqs = min(seqs, max(1, int(seqs * th.f1))) if seqs else 0
    vit = StageWork(rows=vit_rows, seqs=max(1, vit_seqs), M=hmm.M)
    fwd = StageWork(
        rows=_expected_rows(residues, th.f2), seqs=1, M=hmm.M
    )

    def price(stage: Stage, work: StageWork) -> float:
        if work.rows <= 0:
            return 0.0
        # each stage's registered engine prices itself through its
        # cost hook; engines without one are priced as the CPU baseline
        spec = selection.spec_for(stage.value)
        if spec.cost_hook is None:
            return cpu_stage_time(stage, work, costs)
        return spec.cost_hook(stage, work, device, costs)

    msv_s = price(Stage.MSV, msv)
    vit_s = price(Stage.P7VITERBI, vit)
    fwd_s = cpu_forward_time(fwd, costs) if fwd.rows > 0 else 0.0
    return CostEstimate(
        seconds=msv_s + vit_s + fwd_s,
        residues=residues,
        sequences=seqs,
        M=hmm.M,
        engine=selection.value,
        device=device.name if device is not None else "cpu",
        stage_seconds=(("msv", msv_s), ("p7viterbi", vit_s), ("fwd", fwd_s)),
    )


class AdmissionController:
    """The bounded front door: price, admit, shed, or reject.

    Thread-safe; the queue calls :meth:`admit` under its own lock but
    the scheduler's :meth:`complete` arrives from worker context, so all
    accounting lives behind an internal lock.
    """

    def __init__(
        self,
        limits: AdmissionLimits | None = None,
        device: DeviceSpec | None = None,
        thresholds: PipelineThresholds | None = None,
        costs: CostConstants = DEFAULT_COSTS,
    ) -> None:
        self.limits = limits or AdmissionLimits()
        self.device = device
        self.thresholds = thresholds or PipelineThresholds()
        self.costs = costs
        self._lock = threading.RLock()
        self.submitted = 0       # guarded-by: _lock
        self.admitted = 0        # guarded-by: _lock
        self.rejected = 0        # guarded-by: _lock
        self.shed = 0            # guarded-by: _lock
        self.in_system = 0       # guarded-by: _lock
        self.peak_in_system = 0  # guarded-by: _lock
        self.backlog_cost = 0.0      # guarded-by: _lock
        self.backlog_residues = 0    # guarded-by: _lock
        self.peak_backlog_cost = 0.0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # load assessment

    @property
    def utilization(self) -> float:
        """Fraction of the most-loaded armed watermark (0 when none armed)."""
        lim = self.limits
        with self._lock:
            frac = 0.0
            if lim.max_pending is not None:
                frac = max(frac, self.in_system / lim.max_pending)
            if lim.max_backlog_cost is not None:
                frac = max(frac, self.backlog_cost / lim.max_backlog_cost)
            if lim.max_backlog_residues is not None:
                frac = max(
                    frac, self.backlog_residues / lim.max_backlog_residues
                )
            return frac

    @property
    def state(self) -> DegradationState:
        """Current rung of the degradation ladder."""
        u = self.utilization
        lim = self.limits
        if u >= lim.critical_at:
            return DegradationState.CRITICAL
        if u >= lim.minimal_at:
            return DegradationState.MINIMAL
        if u >= lim.degrade_at:
            return DegradationState.REDUCED
        return DegradationState.NORMAL

    def _retry_after(self, estimate: CostEstimate) -> float:
        """Modelled seconds until the backlog could absorb ``estimate``."""
        with self._lock:
            return max(self.backlog_cost, estimate.seconds, 1e-3)

    # ------------------------------------------------------------------
    # admit / complete

    def admit(
        self,
        hmm: Plan7HMM,
        database: SequenceDatabase,
        engine: Engine | str = Engine.GPU_WARP,
        priority: int = 0,
    ) -> CostEstimate:
        """Price a submission and admit it, or raise :class:`OverloadError`.

        On success the estimate's cost is charged to the backlog; the
        caller must eventually hand the returned estimate back via
        :meth:`complete` (the scheduler does this when the job finishes,
        in any terminal state).
        """
        estimate = estimate_job_cost(
            hmm,
            database,
            engine=engine,
            device=self.device,
            thresholds=self.thresholds,
            costs=self.costs,
        )
        return self.admit_estimate(estimate, priority=priority)

    def admit_estimate(
        self, estimate: CostEstimate, priority: int = 0
    ) -> CostEstimate:
        """The low-level admission decision for an already-priced job."""
        lim = self.limits
        with self._lock:
            self.submitted += 1
            over: str | None = None
            if (
                lim.max_pending is not None
                and self.in_system + 1 > lim.max_pending
            ):
                over = f"pending jobs at watermark ({lim.max_pending})"
            elif (
                lim.max_backlog_cost is not None
                and self.backlog_cost + estimate.seconds > lim.max_backlog_cost
            ):
                over = (
                    f"modelled backlog at watermark "
                    f"({lim.max_backlog_cost:g}s)"
                )
            elif (
                lim.max_backlog_residues is not None
                and self.backlog_residues + estimate.residues
                > lim.max_backlog_residues
            ):
                over = (
                    f"backlog residues at watermark "
                    f"({lim.max_backlog_residues})"
                )
            if over is not None:
                self.rejected += 1
                raise OverloadError(
                    f"admission rejected {estimate!r}: {over}",
                    retry_after=self._retry_after(estimate),
                    kind="rejected",
                )
            if (
                priority < lim.shed_below_priority
                and self.utilization >= lim.degrade_at
            ):
                self.shed += 1
                raise OverloadError(
                    f"admission shed low-priority {estimate!r} "
                    f"(priority {priority} < {lim.shed_below_priority} "
                    f"under load)",
                    retry_after=self._retry_after(estimate),
                    kind="shed",
                )
            self.admitted += 1
            self.in_system += 1
            self.peak_in_system = max(self.peak_in_system, self.in_system)
            self.backlog_cost += estimate.seconds
            self.backlog_residues += estimate.residues
            self.peak_backlog_cost = max(
                self.peak_backlog_cost, self.backlog_cost
            )
            return estimate

    def complete(self, estimate: CostEstimate | None) -> None:
        """Return an admitted job's cost to the pool (idempotent on None)."""
        if estimate is None:
            return
        with self._lock:
            self.in_system = max(0, self.in_system - 1)
            self.backlog_cost = max(0.0, self.backlog_cost - estimate.seconds)
            self.backlog_residues = max(
                0, self.backlog_residues - estimate.residues
            )

    # ------------------------------------------------------------------
    # reporting

    def snapshot(self) -> dict:
        """A point-in-time view for metrics rendering and the soak trace."""
        with self._lock:
            state = self.state
            return {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "in_system": self.in_system,
                "peak_in_system": self.peak_in_system,
                "backlog_cost_s": self.backlog_cost,
                "backlog_residues": self.backlog_residues,
                "peak_backlog_cost_s": self.peak_backlog_cost,
                "utilization": self.utilization,
                "state": state.name,
                "sheds": list(state.sheds),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"AdmissionController(in_system={self.in_system}, "
                f"admitted={self.admitted}, rejected={self.rejected}, "
                f"shed={self.shed}, state={self.state.name})"
            )
