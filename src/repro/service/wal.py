"""Write-ahead journal v2: crash-consistent durable execution state.

:class:`~repro.service.resilience.RunJournal` (v1) checkpoints whole
completed jobs to checksum-free JSONL - a crash loses every in-flight
shard, and nothing detects a journal corrupted after the fact.  This
module replaces it with a real WAL (``repro-wal-v2``):

* **Length-prefixed, CRC-checksummed records.**  The file is a magic
  header followed by frames of ``(payload length, CRC32, JSON payload)``;
  a record that does not round-trip its checksum can never be replayed
  as state.
* **Explicit fsync points.**  Every append flushes and fsyncs before it
  returns (``fsync=False`` exists for tests only), so one append == one
  *journal epoch*: after epoch ``k`` returns, the first ``k`` records
  are durable no matter where the process dies.
* **Generation headers.**  Each open-for-append writes a generation
  record, so a recovered journal shows how many times the run was
  killed and resumed.
* **Torn-tail recovery.**  Opening scans every frame; a truncated or
  checksum-failing tail is *truncated* in salvage mode (``salvaged_bytes``
  reports how much) and raises a typed
  :class:`~repro.errors.JournalCorruptError` in strict mode.

On top of the frame layer, :class:`DurableRunJournal` checkpoints the
service plane's three durable unit kinds - completed **jobs** (with the
submitting job's content fingerprint, so an edited manifest invalidates
stale entries instead of silently serving them), completed **shards**
(bit-exact stage scores keyed by job fingerprint + stage + chunk
content) and completed scan **launch groups** - and
:class:`ShardCheckpoint` binds it to one job for the resilient
executor's exactly-once resume.

The crash-injection harness (``tools/crashpoint.py``) drives all of it:
an ``epoch_hook`` fires after every durable append, and raising
:class:`CrashPoint` from it models a process kill at that exact fsync
boundary.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Callable

import numpy as np

from ..cpu.results import FilterScores
from ..errors import JournalCorruptError
from ..hardening import STRICT, IngestPolicy

__all__ = [
    "WAL_SCHEMA",
    "WAL_MAGIC",
    "CrashPoint",
    "WriteAheadJournal",
    "DurableRunJournal",
    "ShardCheckpoint",
    "fsync_file",
    "fsync_dir",
]

WAL_SCHEMA = "repro-wal-v2"

#: File header; a file that does not start with this is not a WAL.
WAL_MAGIC = b"RWALv2\x00\n"

#: Frame header: big-endian (payload length, CRC32-of-payload).
_FRAME = struct.Struct(">II")

#: Upper bound on a sane record; a larger length field is corruption,
#: not a record we have not finished reading.
_MAX_RECORD = 1 << 28


class CrashPoint(BaseException):
    """A simulated process kill, raised from a journal ``epoch_hook``.

    Derives from :class:`BaseException` so no recovery ladder, fallback
    or ``except ReproError`` path can absorb it - exactly like a real
    ``kill -9``, the only state that survives is what the journal had
    already fsynced.
    """

    def __init__(self, epoch: int) -> None:
        super().__init__(f"injected crash at journal epoch {epoch}")
        self.epoch = epoch


def fsync_file(path: str | Path) -> None:
    """fsync a closed file's contents to stable storage."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | Path) -> None:
    """fsync a directory, making renames/creations in it durable."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadJournal:
    """The frame layer: an append-only log of checksummed JSON records.

    ``resume=True`` recovers existing records (salvage truncates a torn
    or corrupt tail; strict raises :class:`JournalCorruptError` naming
    the bad byte offset); ``resume=False`` starts a fresh log.  Either
    way the journal is then open for append and a generation record is
    written, so :attr:`generation` counts the lifetimes that wrote to
    this file.

    Every append is one *epoch*: frame written, flushed, fsynced, and
    only then is ``epoch_hook(epoch)`` called - the crash-injection
    seam.  A hook that raises kills the process model at a point where
    exactly ``epoch`` records are durable.
    """

    def __init__(
        self,
        path: str | Path,
        resume: bool = True,
        policy: IngestPolicy = STRICT,
        fsync: bool = True,
        epoch_hook: Callable[[int], None] | None = None,
    ) -> None:
        self.path = Path(path)
        self.policy = policy
        self.fsync = fsync
        self.epoch_hook = epoch_hook
        self.epoch = 0           # durable appends by this process
        self.generation = 0      # lifetimes that have written this file
        self.salvaged_bytes = 0  # torn/corrupt tail dropped on recovery
        self._records: list[dict] = []
        if not resume and self.path.exists():
            self.path.unlink()
        if self.path.exists():
            self._recover()
        self._fh = self.path.open("ab")
        if self._fh.tell() == 0:
            self._fh.write(WAL_MAGIC)
            self._flush()
        self.generation += 1
        self.append("generation", generation=self.generation, schema=WAL_SCHEMA)

    # -- recovery ------------------------------------------------------------

    def _corrupt(self, offset: int, reason: str, data_len: int) -> bool:
        """Handle a bad tail at ``offset``; True if recovery may continue."""
        if not self.policy.salvage:
            raise JournalCorruptError(
                f"{self.path}: {reason} at byte {offset} "
                f"(file is {data_len} bytes); recover with the salvage "
                "policy to truncate the damaged tail, or delete the journal"
            )
        self.salvaged_bytes = data_len - offset
        with self.path.open("r+b") as fh:
            fh.truncate(offset)
            fh.flush()
            os.fsync(fh.fileno())
        return True

    def _recover(self) -> None:
        data = self.path.read_bytes()
        if len(data) < len(WAL_MAGIC):
            if WAL_MAGIC.startswith(data):
                # crash before the header finished: an empty journal
                self._corrupt(0, "torn file header", len(data))
                return
            raise JournalCorruptError(
                f"{self.path}: not a {WAL_SCHEMA} journal (bad magic)"
            )
        if not data.startswith(WAL_MAGIC):
            raise JournalCorruptError(
                f"{self.path}: not a {WAL_SCHEMA} journal (bad magic)"
            )
        offset = len(WAL_MAGIC)
        while offset < len(data):
            if offset + _FRAME.size > len(data):
                self._corrupt(offset, "torn record frame", len(data))
                return
            length, crc = _FRAME.unpack_from(data, offset)
            if length > _MAX_RECORD:
                self._corrupt(
                    offset, f"absurd record length {length}", len(data)
                )
                return
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                self._corrupt(offset, "torn record payload", len(data))
                return
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                self._corrupt(offset, "record checksum mismatch", len(data))
                return
            try:
                record = json.loads(payload.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._corrupt(offset, "undecodable record payload", len(data))
                return
            self._accept(record)
            offset = end

    def _accept(self, record: dict) -> None:
        """Install one durable record into the in-memory state."""
        self._records.append(record)
        if record.get("kind") == "generation":
            self.generation = max(
                self.generation, int(record.get("generation", 0))
            )

    # -- appends -------------------------------------------------------------

    def _flush(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def append(self, kind: str, **fields) -> dict:
        """Durably append one record; returns it after the fsync point."""
        record = {"kind": kind, **fields}
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self._flush()
        self._accept(record)
        self.epoch += 1
        if self.epoch_hook is not None:
            self.epoch_hook(self.epoch)
        return record

    def close(self) -> None:
        self._fh.close()

    def records(self, kind: str | None = None) -> list[dict]:
        """All recovered + appended records (optionally one kind)."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.get("kind") == kind]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({str(self.path)!r}, "
            f"records={len(self._records)}, generation={self.generation})"
        )


def _encode_array(arr: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(arr).tobytes()).decode()


def _decode_array(text: str, dtype, n: int) -> np.ndarray | None:
    raw = base64.b64decode(text.encode())
    arr = np.frombuffer(raw, dtype=dtype)
    if arr.size != n:
        return None
    return arr.copy()


class DurableRunJournal(WriteAheadJournal):
    """Shard-granular checkpoint journal for search and scan runs.

    Three durable unit kinds ride the frame layer:

    * ``job`` - a completed batch job (the v1 entry plus the job's
      content ``fingerprint``, which :meth:`Scheduler.run` validates
      before trusting the entry);
    * ``shard`` - one completed stage shard, keyed by
      ``sha256(job fingerprint, stage, chunk content)`` with the
      bit-exact scores inline, so resume replays only unfinished shards;
    * ``group`` - one completed scan launch group (hits + stage stats),
      keyed by library/model fingerprints, database content and the
      library-size E-value context.

    Keys are pure content hashes: an edited manifest, re-pressed model
    or changed database produces different keys and the stale entries
    are simply never consulted again.  ``duplicate_units`` counts unit
    keys journaled more than once - the kill-anywhere harness pins it
    at zero (exactly-once: a journaled unit is never re-executed, so it
    is never re-recorded).
    """

    def __init__(
        self,
        path: str | Path,
        resume: bool = True,
        policy: IngestPolicy = STRICT,
        fsync: bool = True,
        epoch_hook: Callable[[int], None] | None = None,
    ) -> None:
        self._jobs: dict[str, dict] = {}
        self._shards: dict[str, dict] = {}
        self._groups: dict[str, dict] = {}
        self.duplicate_units = 0
        super().__init__(
            path, resume=resume, policy=policy, fsync=fsync,
            epoch_hook=epoch_hook,
        )

    def _accept(self, record: dict) -> None:
        super()._accept(record)
        kind = record.get("kind")
        if kind == "job":
            job_id = record.get("job_id")
            if isinstance(job_id, str):
                self._jobs[job_id] = record
        elif kind == "shard":
            key = record.get("key")
            if isinstance(key, str):
                if key in self._shards:
                    self.duplicate_units += 1
                self._shards[key] = record
        elif kind == "group":
            key = record.get("key")
            if isinstance(key, str):
                if key in self._groups:
                    self.duplicate_units += 1
                self._groups[key] = record

    # -- job entries (RunJournal-compatible surface) -------------------------

    def completed(self, job_id: str) -> dict | None:
        """The journal entry for a finished job, or None."""
        entry = self._jobs.get(job_id)
        if entry is not None and entry.get("state") == "done":
            return entry
        return None

    def record(self, job) -> dict:
        """Checkpoint one finished job (call after state becomes DONE)."""
        from .job import job_fingerprint
        from .resilience import result_digest

        results = job.results
        return self.append(
            "job",
            job_id=job.job_id,
            state=job.state.value,
            digest=result_digest(results) if results is not None else "",
            n_targets=results.n_targets if results is not None else 0,
            n_hits=len(results.hits) if results is not None else 0,
            effective_engine=job.effective_engine.value,
            query=job.hmm.name,
            database=job.database.name,
            fingerprint=job_fingerprint(job.hmm, job.database, job.engine),
        )

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    # -- shard entries -------------------------------------------------------

    def shard(self, key: str, n: int) -> FilterScores | None:
        """The checkpointed scores for one shard unit, or None.

        A stored record whose row count disagrees with the live chunk is
        treated as absent (content keys make this unreachable short of a
        hash collision, but a size check is cheap insurance against
        handing the pipeline a wrong-shaped array).
        """
        entry = self._shards.get(key)
        if entry is None or int(entry.get("n", -1)) != n:
            return None
        scores = _decode_array(entry.get("scores", ""), np.float64, n)
        overflowed = _decode_array(entry.get("overflowed", ""), np.bool_, n)
        if scores is None or overflowed is None:
            return None
        return FilterScores(scores=scores, overflowed=overflowed)

    def record_shard(
        self, key: str, job_id: str, stage: str, part: FilterScores
    ) -> dict:
        """Durably checkpoint one completed stage shard."""
        return self.append(
            "shard",
            key=key,
            job_id=job_id,
            stage=stage,
            n=int(np.asarray(part.scores).size),
            scores=_encode_array(np.asarray(part.scores, dtype=np.float64)),
            overflowed=_encode_array(
                np.asarray(part.overflowed, dtype=np.bool_)
            ),
        )

    # -- scan launch-group entries -------------------------------------------

    def group(self, key: str) -> dict | None:
        """The checkpointed payload for one scan launch group, or None."""
        return self._groups.get(key)

    def record_group(self, key: str, **payload) -> dict:
        """Durably checkpoint one completed scan launch group."""
        return self.append("group", key=key, **payload)

    # -- accounting ----------------------------------------------------------

    def unit_counts(self) -> dict[str, int]:
        return {
            "jobs": len(self._jobs),
            "shards": len(self._shards),
            "groups": len(self._groups),
            "duplicates": self.duplicate_units,
        }


class ShardCheckpoint:
    """One job's view of the journal for shard-granular exactly-once resume.

    The resilient executor asks :meth:`lookup` before scoring a shard
    and :meth:`commit` after - both keyed by :meth:`shard_key`, a pure
    content hash over the job fingerprint, stage name, model size and
    the chunk's sequences.  Any drift (edited database, different model,
    different chunking) changes the key, so stale checkpoints are
    recomputed rather than served.
    """

    def __init__(
        self, journal: DurableRunJournal, job_id: str, job_fp: str
    ) -> None:
        self.journal = journal
        self.job_id = job_id
        self.job_fp = job_fp

    def shard_key(self, stage: str, profile, chunk) -> str:
        h = hashlib.sha256()
        h.update(b"shard:")
        h.update(self.job_fp.encode())
        h.update(stage.encode())
        h.update(str(getattr(profile, "M", 0)).encode())
        h.update(str(len(chunk)).encode())
        for seq in chunk:
            h.update(seq.name.encode())
            h.update(np.asarray(seq.codes, dtype=np.uint8).tobytes())
        return h.hexdigest()

    def lookup(self, key: str, n: int) -> FilterScores | None:
        return self.journal.shard(key, n)

    def commit(self, key: str, stage: str, part: FilterScores) -> None:
        self.journal.record_shard(key, self.job_id, stage, part)
