"""Deterministic, seedable fault injection for the batch service.

A :class:`FaultPlan` arms per-device, per-dispatch faults so every
failure mode the resilient dispatcher must survive is *reproducible*:
the same seed produces the same faults at the same dispatch ticks, and
therefore (because retry backoff is also deterministically jittered)
the same recovery event log, run after run.

Five fault kinds model the ways a real device pool degrades:

* :attr:`FaultKind.LAUNCH` - the kernel launch itself fails
  (:class:`~repro.errors.LaunchError`), e.g. an allocation error.
* :attr:`FaultKind.KERNEL` - a transient mid-kernel fault
  (:class:`~repro.errors.KernelError`), e.g. an ECC event.
* :attr:`FaultKind.HANG` - the device stops responding; the stage
  watchdog trips its deadline (:class:`~repro.errors.DeadlineError`).
* :attr:`FaultKind.SLOW` - the shard *completes* but only after
  stalling past its cost-model prediction; the hung-shard watchdog
  cancels it (:class:`~repro.errors.SlowShardError`) so the ladder can
  re-place the work instead of accepting a straggler.
* :attr:`FaultKind.CORRUPT` - the kernel "completes" but the returned
  shard scores are corrupted; detected by the dispatcher's cheap shard
  checksum re-verification (:class:`~repro.errors.ShardIntegrityError`).

Faults are drawn by slot index and a per-device *dispatch tick* that
advances every time the resilient dispatcher attempts a shard on that
device - retries consume ticks too, so a plan can model back-to-back
failures that exhaust a device's retry budget.

A **global plan** can be armed from the environment
(``REPRO_FAULT_SEED``, optional ``REPRO_FAULT_COUNT``); the CI chaos
job runs the whole test suite that way, pinning the invariant that
injected faults never change reported hits.
"""

from __future__ import annotations

import enum
import os
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..errors import LaunchError

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "ResilienceEvent"]

ENV_FAULT_SEED = "REPRO_FAULT_SEED"
ENV_FAULT_COUNT = "REPRO_FAULT_COUNT"


class FaultKind(enum.Enum):
    """The failure modes the resilient dispatcher must survive."""

    LAUNCH = "launch"
    KERNEL = "kernel"
    HANG = "hang"
    SLOW = "slow"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: fire ``kind`` on ``device``'s ``dispatch``-th attempt."""

    device: int
    dispatch: int
    kind: FaultKind

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "dispatch": self.dispatch,
            "kind": self.kind.value,
        }


@dataclass
class ResilienceEvent:
    """One entry in the deterministic fault/recovery event log.

    ``kind`` is one of ``fault``, ``retry``, ``repartition``,
    ``cpu_fallback``, ``cpu_stage``, ``quarantine``, ``probe``,
    ``reintegrate``, ``resume``.  Events carry no wall-clock state, so
    the log for a given :class:`FaultPlan` seed is bit-identical across
    runs - the property the determinism tests pin.
    """

    kind: str
    stage: str = ""
    device: int | None = None
    job_id: str | None = None
    attempt: int = 0
    fault: str | None = None
    backoff: float = 0.0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stage": self.stage,
            "device": self.device,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "fault": self.fault,
            "backoff": self.backoff,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        parts = [self.kind]
        if self.stage:
            parts.append(f"stage={self.stage}")
        if self.device is not None:
            parts.append(f"dev{self.device}")
        if self.fault:
            parts.append(f"fault={self.fault}")
        if self.attempt:
            parts.append(f"attempt={self.attempt}")
        if self.backoff:
            parts.append(f"backoff={self.backoff:.4f}s")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class FaultPlan:
    """An armed, replayable schedule of device faults.

    Parameters
    ----------
    faults:
        The :class:`FaultSpec` entries to arm.  At most one fault per
        (device, dispatch tick) - duplicates are a plan bug and are
        rejected up front.
    seed:
        Recorded provenance when the plan came from :meth:`seeded`.

    The plan is consumed through :meth:`draw`: every call advances the
    named device's dispatch cursor by one tick and returns the armed
    :class:`FaultKind` for that tick, or ``None``.  Fired faults are
    kept on :attr:`fired` in firing order.
    """

    def __init__(
        self, faults: Iterable[FaultSpec], seed: int | None = None
    ) -> None:
        self.seed = seed
        self.faults = sorted(faults, key=lambda f: (f.device, f.dispatch))
        self._by_device: dict[int, dict[int, FaultKind]] = {}
        for f in self.faults:
            slots = self._by_device.setdefault(f.device, {})
            if f.dispatch in slots:
                raise LaunchError(
                    f"fault plan arms device {f.device} dispatch "
                    f"{f.dispatch} twice"
                )
            slots[f.dispatch] = f.kind
        self._cursor: defaultdict[int, int] = defaultdict(int)
        self.fired: list[FaultSpec] = []

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_faults: int = 4,
        n_devices: int = 4,
        kinds: Iterable[FaultKind] | None = None,
        min_spacing: int = 3,
    ) -> "FaultPlan":
        """A reproducible random plan of ``n_faults`` transient faults.

        Per-device fault ticks are kept at least ``min_spacing`` apart,
        so a default :class:`~repro.service.resilience.RetryPolicy`
        (two same-device retries) always recovers on-device - the shape
        the global CI chaos plan needs so that accounting-sensitive
        tests still see every device doing work.  Explicit plans (the
        constructor) can pack consecutive ticks to force repartition,
        CPU fallback and quarantine.
        """
        if n_faults < 0:
            raise LaunchError("n_faults must be >= 0")
        if n_devices < 1:
            raise LaunchError("n_devices must be >= 1")
        rng = np.random.default_rng(seed)
        kind_pool = tuple(kinds) if kinds is not None else tuple(FaultKind)
        cursors: dict[int, int] = {}
        faults: list[FaultSpec] = []
        for _ in range(n_faults):
            device = int(rng.integers(n_devices))
            prev = cursors.get(device)
            if prev is None:
                tick = int(rng.integers(min_spacing))
            else:
                tick = prev + min_spacing + int(rng.integers(min_spacing))
            cursors[device] = tick
            kind = kind_pool[int(rng.integers(len(kind_pool)))]
            faults.append(FaultSpec(device, tick, kind))
        return cls(faults, seed=seed)

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "FaultPlan | None":
        """The global chaos plan, or ``None`` when the env is unset.

        ``REPRO_FAULT_SEED=<int>`` arms a :meth:`seeded` plan (size
        ``REPRO_FAULT_COUNT``, default 3) on every scheduler that is not
        given an explicit plan - how the CI chaos job soaks the whole
        test suite in deterministic faults.
        """
        env = environ if environ is not None else os.environ
        raw = env.get(ENV_FAULT_SEED)
        if raw is None or raw == "":
            return None
        count = int(env.get(ENV_FAULT_COUNT, "3"))
        return cls.seeded(int(raw), n_faults=count)

    def draw(self, device: int) -> FaultKind | None:
        """Consume ``device``'s next dispatch tick; the armed fault, if any."""
        tick = self._cursor[device]
        self._cursor[device] = tick + 1
        kind = self._by_device.get(device, {}).get(tick)
        if kind is not None:
            self.fired.append(FaultSpec(device, tick, kind))
        return kind

    @property
    def fired_count(self) -> int:
        return len(self.fired)

    @property
    def remaining(self) -> int:
        """Armed faults not yet fired (their ticks may never be reached)."""
        return len(self.faults) - len(self.fired)

    def reset(self) -> None:
        """Rewind cursors and the fired log so the plan replays from tick 0."""
        self._cursor.clear()
        self.fired.clear()

    def __len__(self) -> int:
        return len(self.faults)

    def describe(self) -> str:
        """One line per armed fault, for logs and demos."""
        head = f"fault plan (seed={self.seed}, {len(self.faults)} faults)"
        rows = [
            f"  dev{f.device} dispatch {f.dispatch}: {f.kind.value}"
            for f in self.faults
        ]
        return "\n".join([head, *rows]) if rows else head + ": empty"

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, armed={len(self.faults)}, "
            f"fired={len(self.fired)})"
        )
