"""Memoization of prepared search pipelines, keyed by model identity.

Constructing an :class:`~repro.pipeline.pipeline.HmmsearchPipeline` is
the expensive part of serving a query: it quantizes the MSV/Viterbi
profiles and - dominating everything - calibrates the stage null
distributions by scoring hundreds of background sequences.  Repeat
queries against the same model (the common case for a search service:
popular Pfam families get hit constantly) should pay that cost once.

The cache key is the **content** of the model plus the pipeline
settings, not object identity: two `Plan7HMM` instances loaded from the
same file hit the same entry.  Eviction is LRU with a configurable
bound, and hit/miss/eviction counters feed the service metrics report.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import PipelineError
from ..hmm.fingerprint import hmm_fingerprint
from ..hmm.plan7 import Plan7HMM
from ..pipeline.pipeline import HmmsearchPipeline, PipelineThresholds

# hmm_fingerprint moved to repro.hmm.fingerprint (the scan catalog needs
# it without importing the service plane); re-exported here for
# compatibility with existing imports.
__all__ = ["hmm_fingerprint", "PipelineSettings", "PipelineCache"]


@dataclass(frozen=True)
class PipelineSettings:
    """Hashable pipeline-construction parameters (part of the cache key)."""

    L: int = 400
    multihit: bool = True
    seed: int = 42
    calibration_filter_sample: int = 400
    calibration_forward_sample: int = 120

    def build(
        self, hmm: Plan7HMM, thresholds: PipelineThresholds | None = None
    ) -> HmmsearchPipeline:
        return HmmsearchPipeline(
            hmm,
            L=self.L,
            multihit=self.multihit,
            thresholds=thresholds,
            seed=self.seed,
            calibration_filter_sample=self.calibration_filter_sample,
            calibration_forward_sample=self.calibration_forward_sample,
        )


class PipelineCache:
    """Bounded LRU of calibrated pipelines with hit/miss accounting.

    The key is (model content, pipeline settings, thresholds): anything
    that changes quantization, calibration or stage filtering gets its
    own entry, so a cached pipeline is always safe to reuse verbatim.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise PipelineError("cache must hold at least one pipeline")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple, HmmsearchPipeline] = OrderedDict()  # guarded-by: _lock
        self.hits = 0        # guarded-by: _lock
        self.misses = 0      # guarded-by: _lock
        self.evictions = 0   # guarded-by: _lock

    @staticmethod
    def _key(
        hmm: Plan7HMM,
        settings: PipelineSettings,
        thresholds: PipelineThresholds | None,
    ) -> tuple:
        th = (
            None
            if thresholds is None
            else (thresholds.f1, thresholds.f2, thresholds.f3,
                  thresholds.report_evalue)
        )
        return (hmm_fingerprint(hmm), settings, th)

    def get(
        self,
        hmm: Plan7HMM,
        settings: PipelineSettings | None = None,
        thresholds: PipelineThresholds | None = None,
    ) -> HmmsearchPipeline:
        """The calibrated pipeline for this model, building it on miss."""
        settings = settings or PipelineSettings()
        key = self._key(hmm, settings, thresholds)
        with self._lock:
            pipeline = self._entries.get(key)
            if pipeline is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return pipeline
            self.misses += 1
        # build outside the lock: calibration takes seconds, and two
        # concurrent misses on the same key just race to insert the
        # same (deterministically built) pipeline
        pipeline = settings.build(hmm, thresholds)
        with self._lock:
            self._entries[key] = pipeline
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return pipeline

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, hmm: Plan7HMM) -> bool:
        fp = hmm_fingerprint(hmm)
        with self._lock:
            return any(key[0] == fp for key in self._entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
