"""Minimal, strict FASTA reader/writer for protein sequences."""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from ..errors import FormatError
from .database import SequenceDatabase
from .sequence import DigitalSequence

__all__ = ["read_fasta", "write_fasta", "parse_fasta_text"]


def _records(handle: TextIO):
    name: str | None = None
    desc = ""
    parts: list[str] = []
    for lineno, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith(">"):
            if name is not None:
                yield name, desc, "".join(parts)
            header = line[1:].strip()
            if not header:
                raise FormatError(f"line {lineno}: empty FASTA header")
            name, _, desc = header.partition(" ")
            parts = []
        else:
            if name is None:
                raise FormatError(
                    f"line {lineno}: sequence data before any '>' header"
                )
            parts.append(line.strip())
    if name is not None:
        yield name, desc, "".join(parts)


def parse_fasta_text(text: str, name: str = "fasta") -> SequenceDatabase:
    """Parse FASTA from an in-memory string."""
    seqs = [
        DigitalSequence.from_text(n, s, description=d)
        for n, d, s in _records(io.StringIO(text))
    ]
    if not seqs:
        raise FormatError("no FASTA records found")
    return SequenceDatabase(seqs, name=name)


def read_fasta(path: str | Path) -> SequenceDatabase:
    """Read a FASTA file into a :class:`SequenceDatabase`."""
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        seqs = [
            DigitalSequence.from_text(n, s, description=d)
            for n, d, s in _records(handle)
        ]
    if not seqs:
        raise FormatError(f"{path}: no FASTA records found")
    return SequenceDatabase(seqs, name=path.stem)


def write_fasta(
    path: str | Path, sequences: Iterable[DigitalSequence], width: int = 60
) -> None:
    """Write sequences to ``path`` in FASTA format, wrapped at ``width``."""
    if width < 1:
        raise FormatError("line width must be positive")
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for seq in sequences:
            header = f">{seq.name}"
            if seq.description:
                header += f" {seq.description}"
            handle.write(header + "\n")
            text = seq.text
            for start in range(0, len(text), width):
                handle.write(text[start : start + width] + "\n")
