"""FASTA reader/writer for protein sequences, strict or salvage mode.

Strict mode (the default) aborts on the first malformed record with a
:class:`~repro.errors.FormatError` carrying the line number.  Salvage
mode (:data:`repro.hardening.SALVAGE`) skips-and-quarantines malformed
records - bad residues, empty headers, empty sequences, duplicate names,
data before any header - recording each into a
:class:`~repro.hardening.RecordQuarantine` with file/line/record
context, and returns a database of the surviving records.

Line endings: ``\\n``, ``\\r\\n`` and bare ``\\r`` artifacts are all
stripped, so Windows-authored files parse identically to Unix ones.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from ..errors import AlphabetError, FormatError, SequenceError
from ..hardening import IngestPolicy, RecordQuarantine, STRICT
from .database import SequenceDatabase
from .sequence import DigitalSequence

__all__ = ["read_fasta", "write_fasta", "parse_fasta_text"]


def _records(
    handle: TextIO,
    source: str,
    policy: IngestPolicy,
    quarantine: RecordQuarantine,
):
    """Yield ``(header_lineno, name, description, residue_text)`` tuples.

    Structural problems (empty header, residue data before any header)
    raise in strict mode; in salvage mode the offending record is
    quarantined and the residue lines that belong to it are skipped.
    """
    name: str | None = None
    desc = ""
    lineno0 = 0
    parts: list[str] = []
    skipping = False  # inside a record whose header was quarantined
    for lineno, raw in enumerate(handle, start=1):
        line = raw.rstrip("\r\n")
        if not line.strip():
            continue
        if line.startswith(">"):
            if name is not None:
                yield lineno0, name, desc, "".join(parts)
            name, parts, skipping = None, [], False
            header = line[1:].strip()
            if not header:
                if not policy.salvage:
                    raise FormatError(
                        f"{source}: line {lineno}: empty FASTA header"
                    )
                quarantine.add(
                    source, lineno, "", "empty FASTA header", kind="fasta"
                )
                skipping = True
                continue
            name, _, desc = header.partition(" ")
            lineno0 = lineno
        else:
            if name is None:
                if skipping:
                    continue  # body of an already-quarantined record
                if not policy.salvage:
                    raise FormatError(
                        f"{source}: line {lineno}: sequence data before "
                        "any '>' header"
                    )
                quarantine.add(
                    source, lineno, "",
                    "sequence data before any '>' header", kind="fasta",
                )
                skipping = True
                continue
            parts.append(line.strip())
    if name is not None:
        yield lineno0, name, desc, "".join(parts)


def _digitize(
    records,
    source: str,
    policy: IngestPolicy,
    quarantine: RecordQuarantine,
) -> list[DigitalSequence]:
    """Digitize parsed records, deduplicating names; salvage quarantines."""
    seqs: list[DigitalSequence] = []
    seen: dict[str, int] = {}
    for lineno, name, desc, text in records:
        if name in seen:
            reason = (
                f"duplicate record name (first seen at line {seen[name]})"
            )
            if not policy.salvage:
                raise FormatError(f"{source}: line {lineno}: {reason}")
            quarantine.add(source, lineno, name, reason, kind="fasta")
            continue
        try:
            seq = DigitalSequence.from_text(name, text, description=desc)
        except (AlphabetError, SequenceError) as exc:
            if not policy.salvage:
                raise FormatError(
                    f"{source}: line {lineno}: record {name!r}: {exc}"
                ) from exc
            quarantine.add(source, lineno, name, str(exc), kind="fasta")
            continue
        seen[name] = lineno
        seqs.append(seq)
    return seqs


def _parse(
    handle: TextIO,
    source: str,
    db_name: str,
    policy: IngestPolicy,
    quarantine: RecordQuarantine | None,
) -> SequenceDatabase:
    q = quarantine if quarantine is not None else RecordQuarantine()
    before = len(q)
    seqs = _digitize(_records(handle, source, policy, q), source, policy, q)
    dropped = len(q) - before
    if not seqs and not dropped:
        raise FormatError(f"{source}: no FASTA records found")
    if policy.salvage:
        q.check_budget(policy, source, len(seqs) + dropped, len(seqs))
    return SequenceDatabase(seqs, name=db_name)


def parse_fasta_text(
    text: str,
    name: str = "fasta",
    policy: IngestPolicy = STRICT,
    quarantine: RecordQuarantine | None = None,
) -> SequenceDatabase:
    """Parse FASTA from an in-memory string."""
    return _parse(io.StringIO(text), name, name, policy, quarantine)


def read_fasta(
    path: str | Path,
    policy: IngestPolicy = STRICT,
    quarantine: RecordQuarantine | None = None,
) -> SequenceDatabase:
    """Read a FASTA file into a :class:`SequenceDatabase`.

    ``policy`` selects strict (raise on the first malformed record) or
    salvage (skip-and-quarantine) ingestion; ``quarantine`` collects the
    skipped records when salvaging.
    """
    path = Path(path)
    # newline="" preserves \r so the CRLF stripping is exercised (and
    # tested) on every platform rather than hidden by text-mode
    # translation of whatever OS the reader happens to run on
    with path.open("r", encoding="ascii", newline="") as handle:
        return _parse(handle, str(path), path.stem, policy, quarantine)


def write_fasta(
    path: str | Path, sequences: Iterable[DigitalSequence], width: int = 60
) -> None:
    """Write sequences to ``path`` in FASTA format, wrapped at ``width``."""
    if width < 1:
        raise FormatError("line width must be positive")
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for seq in sequences:
            header = f">{seq.name}"
            if seq.description:
                header += f" {seq.description}"
            handle.write(header + "\n")
            text = seq.text
            for start in range(0, len(text), width):
                handle.write(text[start : start + width] + "\n")
