"""Digital protein sequences."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..alphabet import AMINO, pack_residues
from ..errors import SequenceError

__all__ = ["DigitalSequence"]


@dataclass(frozen=True)
class DigitalSequence:
    """A named protein sequence held in digital (coded) form.

    The residue array is validated on construction: every code must be a
    residue (canonical or degenerate); gap/terminator symbols are rejected
    because the search kernels and the 5-bit packer give them no meaning.
    """

    name: str
    codes: np.ndarray
    description: str = ""
    _packed: np.ndarray | None = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(self.codes, dtype=np.uint8)
        if arr.ndim != 1:
            raise SequenceError(f"sequence {self.name!r}: codes must be 1-D")
        if arr.size == 0:
            raise SequenceError(f"sequence {self.name!r} is empty")
        AMINO.validate_sequence(arr)
        object.__setattr__(self, "codes", arr)

    @classmethod
    def from_text(
        cls, name: str, text: str, description: str = ""
    ) -> "DigitalSequence":
        """Digitize ``text`` (one-letter amino codes) into a sequence."""
        return cls(name=name, codes=AMINO.encode(text), description=description)

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def text(self) -> str:
        """The sequence rendered back to one-letter symbols."""
        return AMINO.decode(self.codes)

    def packed(self) -> np.ndarray:
        """5-bit packed 32-bit words (cached; see paper Figure 6)."""
        if self._packed is None:
            object.__setattr__(self, "_packed", pack_residues(self.codes))
        assert self._packed is not None
        return self._packed

    def __repr__(self) -> str:
        return f"DigitalSequence(name={self.name!r}, length={len(self)})"
