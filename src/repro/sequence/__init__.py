"""Sequences, databases, FASTA I/O and synthetic database generators."""

from .database import PaddedBatch, SequenceDatabase
from .fasta import parse_fasta_text, read_fasta, write_fasta
from .sequence import DigitalSequence
from .stockholm import (
    StockholmAlignment,
    parse_stockholm_text,
    read_stockholm,
    write_stockholm,
)
from .synthetic import (
    BACKGROUND_FREQUENCIES,
    envnr_like,
    homolog_database,
    random_database,
    random_sequence_codes,
    swissprot_like,
)

__all__ = [
    "DigitalSequence",
    "SequenceDatabase",
    "PaddedBatch",
    "read_fasta",
    "write_fasta",
    "parse_fasta_text",
    "StockholmAlignment",
    "read_stockholm",
    "write_stockholm",
    "parse_stockholm_text",
    "BACKGROUND_FREQUENCIES",
    "random_sequence_codes",
    "random_database",
    "homolog_database",
    "swissprot_like",
    "envnr_like",
]
