"""Minimal Stockholm 1.0 alignment I/O, strict or salvage mode.

Pfam distributes its seed alignments in Stockholm format; this reader
covers the subset needed to feed :func:`repro.hmm.build_hmm_from_msa`:
the header line, ``#=GF``-style annotations (kept as metadata), sequence
lines (including the multi-block "interleaved" layout), and the ``//``
terminator.

Strict mode (default) raises :class:`~repro.errors.FormatError` on the
first malformed line.  Salvage mode
(:data:`repro.hardening.SALVAGE`) quarantines malformed sequence lines,
rows whose final width disagrees with the alignment majority, and a
missing ``//`` terminator, keeping whatever aligns cleanly.  Mixed
``\\r\\n`` line endings are tolerated in both modes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import FormatError
from ..hardening import IngestPolicy, RecordQuarantine, STRICT

__all__ = ["StockholmAlignment", "read_stockholm", "write_stockholm",
           "parse_stockholm_text"]

_HEADER = "# STOCKHOLM 1.0"


@dataclass
class StockholmAlignment:
    """One alignment: ordered names, equal-width rows, GF annotations."""

    names: list[str]
    rows: list[str]
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.names) != len(self.rows):
            raise FormatError("names and rows must pair up")
        if not self.rows:
            raise FormatError("alignment cannot be empty")
        widths = {len(r) for r in self.rows}
        if len(widths) != 1:
            raise FormatError("alignment rows must have equal width")
        if len(set(self.names)) != len(self.names):
            raise FormatError("duplicate sequence names in alignment")

    @property
    def width(self) -> int:
        return len(self.rows[0])

    def __len__(self) -> int:
        return len(self.rows)


def parse_stockholm_text(
    text: str,
    policy: IngestPolicy = STRICT,
    quarantine: RecordQuarantine | None = None,
    source: str = "stockholm",
) -> StockholmAlignment:
    """Parse one Stockholm alignment from a string."""
    q = quarantine if quarantine is not None else RecordQuarantine()
    lines = text.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise FormatError(f"missing Stockholm header {_HEADER!r}")
    annotations: dict[str, str] = {}
    chunks: dict[str, list[str]] = {}
    first_line: dict[str, int] = {}
    order: list[str] = []
    terminated = False
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.rstrip()
        if not line:
            continue
        if line == "//":
            terminated = True
            break
        if line.startswith("#=GF"):
            parts = line.split(None, 2)
            if len(parts) == 3:
                key = parts[1]
                annotations[key] = (
                    annotations.get(key, "") + (" " if key in annotations else "")
                    + parts[2]
                )
            continue
        if line.startswith("#"):
            continue  # other annotation classes are skipped
        parts = line.split()
        if len(parts) != 2:
            if not policy.salvage:
                raise FormatError(
                    f"{source}: line {lineno}: expected 'name alignment'"
                )
            q.add(
                source, lineno, parts[0] if parts else "",
                "expected 'name alignment'", kind="stockholm",
            )
            continue
        name, block = parts
        if name not in chunks:
            chunks[name] = []
            order.append(name)
            first_line[name] = lineno
        chunks[name].append(block)
    if not terminated:
        if not policy.salvage:
            raise FormatError(f"{source}: missing // terminator")
        q.add(
            source, len(lines), "",
            "missing // terminator (accepting the rows parsed so far)",
            kind="stockholm",
        )
    if not order:
        raise FormatError(f"{source}: no sequences in alignment")

    rows = {name: "".join(chunks[name]) for name in order}
    if policy.salvage:
        # rows whose width disagrees with the majority are quarantined
        # (ragged rows are the signature of a truncated/garbled block)
        width_votes = Counter(len(r) for r in rows.values())
        majority = width_votes.most_common(1)[0][0]
        survivors = []
        for name in order:
            if len(rows[name]) != majority:
                q.add(
                    source, first_line[name], name,
                    f"row width {len(rows[name])} != alignment width "
                    f"{majority}", kind="stockholm",
                )
            else:
                survivors.append(name)
        q.check_budget(policy, source, len(order), len(survivors))
        order = survivors
    return StockholmAlignment(
        names=order,
        rows=[rows[name] for name in order],
        annotations=annotations,
    )


def read_stockholm(
    path: str | Path,
    policy: IngestPolicy = STRICT,
    quarantine: RecordQuarantine | None = None,
) -> StockholmAlignment:
    """Read one Stockholm alignment from a file."""
    path = Path(path)
    return parse_stockholm_text(
        path.read_text(encoding="ascii"),
        policy=policy,
        quarantine=quarantine,
        source=str(path),
    )


def write_stockholm(
    path: str | Path, alignment: StockholmAlignment, block_width: int = 60
) -> None:
    """Write an alignment in (interleaved) Stockholm format."""
    if block_width < 1:
        raise FormatError("block width must be positive")
    name_w = max(len(n) for n in alignment.names)
    lines = [_HEADER]
    for key, value in alignment.annotations.items():
        lines.append(f"#=GF {key} {value}")
    for start in range(0, alignment.width, block_width):
        lines.append("")
        for name, row in zip(alignment.names, alignment.rows):
            lines.append(f"{name.ljust(name_w)} {row[start : start + block_width]}")
    lines.append("//")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
