"""Minimal Stockholm 1.0 alignment I/O.

Pfam distributes its seed alignments in Stockholm format; this reader
covers the subset needed to feed :func:`repro.hmm.build_hmm_from_msa`:
the header line, ``#=GF``-style annotations (kept as metadata), sequence
lines (including the multi-block "interleaved" layout), and the ``//``
terminator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import FormatError

__all__ = ["StockholmAlignment", "read_stockholm", "write_stockholm",
           "parse_stockholm_text"]

_HEADER = "# STOCKHOLM 1.0"


@dataclass
class StockholmAlignment:
    """One alignment: ordered names, equal-width rows, GF annotations."""

    names: list[str]
    rows: list[str]
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.names) != len(self.rows):
            raise FormatError("names and rows must pair up")
        if not self.rows:
            raise FormatError("alignment cannot be empty")
        widths = {len(r) for r in self.rows}
        if len(widths) != 1:
            raise FormatError("alignment rows must have equal width")
        if len(set(self.names)) != len(self.names):
            raise FormatError("duplicate sequence names in alignment")

    @property
    def width(self) -> int:
        return len(self.rows[0])

    def __len__(self) -> int:
        return len(self.rows)


def parse_stockholm_text(text: str) -> StockholmAlignment:
    """Parse one Stockholm alignment from a string."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise FormatError(f"missing Stockholm header {_HEADER!r}")
    annotations: dict[str, str] = {}
    chunks: dict[str, list[str]] = {}
    order: list[str] = []
    terminated = False
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.rstrip()
        if not line:
            continue
        if line == "//":
            terminated = True
            break
        if line.startswith("#=GF"):
            parts = line.split(None, 2)
            if len(parts) == 3:
                key = parts[1]
                annotations[key] = (
                    annotations.get(key, "") + (" " if key in annotations else "")
                    + parts[2]
                )
            continue
        if line.startswith("#"):
            continue  # other annotation classes are skipped
        parts = line.split()
        if len(parts) != 2:
            raise FormatError(f"line {lineno}: expected 'name alignment'")
        name, block = parts
        if name not in chunks:
            chunks[name] = []
            order.append(name)
        chunks[name].append(block)
    if not terminated:
        raise FormatError("missing // terminator")
    if not order:
        raise FormatError("no sequences in alignment")
    rows = ["".join(chunks[name]) for name in order]
    return StockholmAlignment(names=order, rows=rows, annotations=annotations)


def read_stockholm(path: str | Path) -> StockholmAlignment:
    """Read one Stockholm alignment from a file."""
    return parse_stockholm_text(Path(path).read_text(encoding="ascii"))


def write_stockholm(
    path: str | Path, alignment: StockholmAlignment, block_width: int = 60
) -> None:
    """Write an alignment in (interleaved) Stockholm format."""
    if block_width < 1:
        raise FormatError("block width must be positive")
    name_w = max(len(n) for n in alignment.names)
    lines = [_HEADER]
    for key, value in alignment.annotations.items():
        lines.append(f"#=GF {key} {value}")
    for start in range(0, alignment.width, block_width):
        lines.append("")
        for name, row in zip(alignment.names, alignment.rows):
            lines.append(f"{name.ljust(name_w)} {row[start : start + block_width]}")
    lines.append("//")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
