"""Sequence database container with the statistics the harness needs.

A :class:`SequenceDatabase` is an ordered, immutable collection of
:class:`~repro.sequence.sequence.DigitalSequence`.  Besides item access it
provides the aggregate quantities the performance model consumes (total
residues = total DP rows), padded code matrices for the vectorized engines,
residue-balanced chunking for multi-GPU partitioning, and length sorting
(a classic load-balance trick for warp-per-sequence execution).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence as AbcSequence
from dataclasses import dataclass

import numpy as np

from ..errors import SequenceError
from .sequence import DigitalSequence

__all__ = ["SequenceDatabase", "PaddedBatch"]


@dataclass(frozen=True)
class PaddedBatch:
    """Dense, padded view of a database used by vectorized engines.

    Attributes
    ----------
    codes:
        ``(n_seqs, max_len)`` uint8 matrix; slots beyond a sequence's length
        are filled with ``pad_code`` (an out-of-band value, 31).
    lengths:
        ``(n_seqs,)`` int64 true lengths.
    """

    codes: np.ndarray
    lengths: np.ndarray
    pad_code: int = 31

    @property
    def n_seqs(self) -> int:
        return int(self.codes.shape[0])

    @property
    def max_len(self) -> int:
        return int(self.codes.shape[1])

    def mask_at(self, row: int) -> np.ndarray:
        """Boolean mask of sequences still active at DP row ``row``."""
        return self.lengths > row


class SequenceDatabase(AbcSequence):
    """Ordered immutable collection of digital sequences."""

    def __init__(self, sequences: AbcSequence[DigitalSequence], name: str = "db"):
        if len(sequences) == 0:
            raise SequenceError("a sequence database cannot be empty")
        names = set()
        for seq in sequences:
            if seq.name in names:
                raise SequenceError(f"duplicate sequence name {seq.name!r}")
            names.add(seq.name)
        self._seqs: tuple[DigitalSequence, ...] = tuple(sequences)
        self.name = name
        self._lengths = np.array([len(s) for s in self._seqs], dtype=np.int64)

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._seqs)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return SequenceDatabase(self._seqs[index], name=self.name)
        return self._seqs[index]

    def __iter__(self) -> Iterator[DigitalSequence]:
        return iter(self._seqs)

    # -- aggregate statistics ----------------------------------------------

    @property
    def lengths(self) -> np.ndarray:
        """Sequence lengths, in database order (read-only view)."""
        view = self._lengths.view()
        view.flags.writeable = False
        return view

    @property
    def total_residues(self) -> int:
        """Sum of all lengths: the number of DP rows each stage processes."""
        return int(self._lengths.sum())

    @property
    def mean_length(self) -> float:
        return float(self._lengths.mean())

    @property
    def max_length(self) -> int:
        return int(self._lengths.max())

    def describe(self) -> dict[str, float]:
        """Summary statistics used in reports and EXPERIMENTS.md."""
        return {
            "n_seqs": float(len(self)),
            "total_residues": float(self.total_residues),
            "mean_length": self.mean_length,
            "median_length": float(np.median(self._lengths)),
            "max_length": float(self.max_length),
        }

    # -- engine-facing views -------------------------------------------------

    def padded_batch(self, pad_code: int = 31) -> PaddedBatch:
        """Dense padded code matrix for lockstep vectorized scoring."""
        n, width = len(self), self.max_length
        codes = np.full((n, width), pad_code, dtype=np.uint8)
        for i, seq in enumerate(self._seqs):
            codes[i, : len(seq)] = seq.codes
        return PaddedBatch(codes=codes, lengths=self._lengths.copy(), pad_code=pad_code)

    def sorted_by_length(self, descending: bool = True) -> "SequenceDatabase":
        """Database reordered by length (warp load-balance heuristic)."""
        order = np.argsort(self._lengths, kind="stable")
        if descending:
            order = order[::-1]
        return SequenceDatabase([self._seqs[i] for i in order], name=self.name)

    def subset(self, indices: AbcSequence[int]) -> "SequenceDatabase":
        """Database restricted to the given indices (original order kept)."""
        return SequenceDatabase([self._seqs[i] for i in indices], name=self.name)

    def chunk_by_residues(self, n_chunks: int) -> list["SequenceDatabase"]:
        """Split into ``n_chunks`` contiguous parts of ~equal residue count.

        This is the multi-GPU partitioning rule: each device receives a
        share of total *residues* (not sequence count), because DP work is
        proportional to residues x model size.
        """
        if n_chunks < 1:
            raise SequenceError("n_chunks must be >= 1")
        if n_chunks > len(self):
            raise SequenceError(
                f"cannot split {len(self)} sequences into {n_chunks} chunks"
            )
        target = self.total_residues / n_chunks
        chunks: list[SequenceDatabase] = []
        start, acc = 0, 0
        for i, seq in enumerate(self._seqs):
            acc += len(seq)
            if len(chunks) >= n_chunks - 1:
                break
            chunks_left = n_chunks - len(chunks)  # including the open one
            seqs_left_after = len(self) - i - 1
            # close the open chunk once its cumulative residue quota is
            # met, or when every remaining sequence is needed to populate
            # the remaining chunks
            quota_met = acc >= target * (len(chunks) + 1)
            must_close = seqs_left_after == chunks_left - 1
            if must_close or (quota_met and seqs_left_after >= chunks_left - 1):
                chunks.append(SequenceDatabase(self._seqs[start : i + 1], self.name))
                start = i + 1
        chunks.append(SequenceDatabase(self._seqs[start:], self.name))
        return chunks

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase(name={self.name!r}, n_seqs={len(self)}, "
            f"total_residues={self.total_residues})"
        )
