"""Synthetic sequence databases standing in for Swissprot and Env-nr.

The paper evaluates on Swissprot (459,565 seqs, 171.7M residues, mean
length ~374) and Env-nr (6,549,721 seqs, 1.29G residues, mean length ~197).
Neither database can ship here, and full scale is irrelevant to the
reproduction: every figure depends on the databases only through

* total residue count - a pure scale factor on stage times, and
* the per-stage survivor fractions - controlled by how homologous the
  database is to the query model (paper Section V).

So we generate scaled-down surrogates with matched length distributions and
a controllable fraction of planted homologs (sequences emitted from the
query model, embedded in random flanks).  Swissprot-like databases are
generated *more* homologous than Env-nr-like ones, which reproduces the
paper's observation that Env-nr enjoys the larger overall speedup because
its MSV:Viterbi execution-time ratio is higher.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..errors import SequenceError
from .database import SequenceDatabase
from .sequence import DigitalSequence

__all__ = [
    "BACKGROUND_FREQUENCIES",
    "random_sequence_codes",
    "random_database",
    "homolog_database",
    "swissprot_like",
    "envnr_like",
]


class _EmitsSequences(Protocol):
    """Anything able to emit a domain's residue codes (a Plan-7 HMM)."""

    def sample_sequence(self, rng: np.random.Generator) -> np.ndarray: ...


#: Swissprot-derived background amino-acid frequencies (Robinson &
#: Robinson 1991), the null model HMMER uses; order ACDEFGHIKLMNPQRSTVWY.
BACKGROUND_FREQUENCIES = np.array(
    [
        0.0787945, 0.0151600, 0.0535222, 0.0668298, 0.0397062,
        0.0695071, 0.0229198, 0.0590092, 0.0594422, 0.0963728,
        0.0237718, 0.0414386, 0.0482904, 0.0395639, 0.0540978,
        0.0683364, 0.0540687, 0.0673417, 0.0114135, 0.0304133,
    ]
)
BACKGROUND_FREQUENCIES = BACKGROUND_FREQUENCIES / BACKGROUND_FREQUENCIES.sum()

#: Gamma shape parameter fitted to protein-length distributions.
_LENGTH_GAMMA_SHAPE = 2.2

#: Shortest sequence the generators will emit.
_MIN_LENGTH = 25


def random_sequence_codes(length: int, rng: np.random.Generator) -> np.ndarray:
    """i.i.d. background-distributed residue codes of a given length."""
    if length < 1:
        raise SequenceError("sequence length must be positive")
    return rng.choice(20, size=length, p=BACKGROUND_FREQUENCIES).astype(np.uint8)


def _sample_lengths(
    n: int, mean_length: float, rng: np.random.Generator, max_length: int
) -> np.ndarray:
    scale = mean_length / _LENGTH_GAMMA_SHAPE
    lengths = rng.gamma(_LENGTH_GAMMA_SHAPE, scale, size=n)
    return np.clip(np.round(lengths), _MIN_LENGTH, max_length).astype(np.int64)


def random_database(
    n_seqs: int,
    mean_length: float,
    rng: np.random.Generator,
    name: str = "random",
    max_length: int = 2000,
) -> SequenceDatabase:
    """Database of i.i.d. background sequences, gamma-distributed lengths."""
    if n_seqs < 1:
        raise SequenceError("n_seqs must be positive")
    lengths = _sample_lengths(n_seqs, mean_length, rng, max_length)
    seqs = [
        DigitalSequence(name=f"{name}/{i:06d}", codes=random_sequence_codes(int(L), rng))
        for i, L in enumerate(lengths)
    ]
    return SequenceDatabase(seqs, name=name)


def _plant_homolog(
    hmm: _EmitsSequences, length: int, rng: np.random.Generator
) -> np.ndarray:
    """A model-emitted domain embedded in random background flanks.

    Domains longer than the target length are truncated to a random
    contiguous slice: a short protein matching a long model is a
    partial-length homolog, which the MSV model's uniform entry/exit
    handles by design - and it keeps the database's length distribution
    independent of the query model size (the paper benchmarks every model
    against the same databases).
    """
    domain = hmm.sample_sequence(rng)
    if domain.size > length:
        offset = int(rng.integers(0, domain.size - length + 1))
        domain = domain[offset : offset + length]
    flank_total = max(0, length - domain.size)
    left = int(rng.integers(0, flank_total + 1))
    right = flank_total - left
    parts = []
    if left:
        parts.append(random_sequence_codes(left, rng))
    parts.append(domain)
    if right:
        parts.append(random_sequence_codes(right, rng))
    return np.concatenate(parts).astype(np.uint8)


def homolog_database(
    n_seqs: int,
    mean_length: float,
    rng: np.random.Generator,
    hmm: _EmitsSequences | None = None,
    homolog_fraction: float = 0.0,
    name: str = "synthetic",
    max_length: int = 2000,
) -> SequenceDatabase:
    """Background database with a planted fraction of true homologs.

    Parameters
    ----------
    hmm:
        Query model used to emit homologous domains.  Required when
        ``homolog_fraction`` > 0.
    homolog_fraction:
        Fraction of sequences containing one planted domain; controls how
        many sequences survive the MSV/Viterbi filters beyond the random
        false-positive rate.
    """
    if not 0.0 <= homolog_fraction <= 1.0:
        raise SequenceError("homolog_fraction must be in [0, 1]")
    if homolog_fraction > 0 and hmm is None:
        raise SequenceError("an hmm is required to plant homologs")
    lengths = _sample_lengths(n_seqs, mean_length, rng, max_length)
    is_homolog = rng.random(n_seqs) < homolog_fraction
    seqs = []
    for i, (L, hom) in enumerate(zip(lengths, is_homolog)):
        if hom:
            assert hmm is not None
            codes = _plant_homolog(hmm, int(L), rng)
            tag = "homolog"
        else:
            codes = random_sequence_codes(int(L), rng)
            tag = "decoy"
        seqs.append(
            DigitalSequence(name=f"{name}/{i:06d}", codes=codes, description=tag)
        )
    return SequenceDatabase(seqs, name=name)


def swissprot_like(
    n_seqs: int,
    rng: np.random.Generator,
    hmm: _EmitsSequences | None = None,
    homolog_fraction: float = 0.065,
) -> SequenceDatabase:
    """Scaled-down Swissprot surrogate: mean length ~374, more homologous.

    The real Swissprot is curated and relatively rich in homologs of any
    Pfam query, which lowers its MSV:Viterbi time ratio (paper Section V).
    """
    return homolog_database(
        n_seqs,
        mean_length=374.0,
        rng=rng,
        hmm=hmm,
        homolog_fraction=homolog_fraction if hmm is not None else 0.0,
        name="swissprot_like",
    )


def envnr_like(
    n_seqs: int,
    rng: np.random.Generator,
    hmm: _EmitsSequences | None = None,
    homolog_fraction: float = 0.002,
) -> SequenceDatabase:
    """Scaled-down Env-nr surrogate: mean length ~197, mostly non-homologous.

    Environmental metagenomic reads are short and rarely match a given
    query family, so almost all sequences stop at the MSV stage.
    """
    return homolog_database(
        n_seqs,
        mean_length=197.0,
        rng=rng,
        hmm=hmm,
        homolog_fraction=homolog_fraction if hmm is not None else 0.0,
        name="envnr_like",
    )
