"""Result containers shared by the scoring engines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError

__all__ = ["FilterScores"]


@dataclass(frozen=True)
class FilterScores:
    """Scores (nats) for a batch of sequences from one filter stage.

    Attributes
    ----------
    scores:
        ``(n,)`` float64 scores in nats; +inf where the quantized system
        overflowed (the sequence unconditionally passes the stage).
    overflowed:
        ``(n,)`` boolean overflow flags.
    """

    scores: np.ndarray
    overflowed: np.ndarray

    def __post_init__(self) -> None:
        s = np.asarray(self.scores, dtype=np.float64)
        o = np.asarray(self.overflowed, dtype=bool)
        if s.shape != o.shape or s.ndim != 1:
            raise KernelError("scores and overflowed must be matching 1-D arrays")
        object.__setattr__(self, "scores", s)
        object.__setattr__(self, "overflowed", o)

    def __len__(self) -> int:
        return int(self.scores.size)

    def bits(self) -> np.ndarray:
        """Scores converted from nats to bits."""
        return self.scores / np.log(2.0)
