"""Bounded-memory (chunked) database scoring.

The paper's databases hold millions of sequences and a padded batch of
the whole of Env-nr would not fit in memory; real pipelines stream the
database through the engines in chunks (which is also how the GPU
kernels receive work: grids of blocks over successive slices).  Chunked
scoring is *exactly* equivalent to whole-database scoring because
sequences are independent - an equivalence the tests pin.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import KernelError
from ..sequence.database import SequenceDatabase
from .results import FilterScores

__all__ = ["score_in_chunks", "chunk_indices"]


def chunk_indices(n: int, chunk_size: int) -> list[tuple[int, int]]:
    """Half-open index ranges covering ``0..n`` in ``chunk_size`` steps."""
    if chunk_size < 1:
        raise KernelError("chunk_size must be positive")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


def score_in_chunks(
    score_batch: Callable[[object, SequenceDatabase], FilterScores],
    profile,
    database: SequenceDatabase,
    chunk_size: int,
) -> FilterScores:
    """Apply a batch scoring engine chunk-by-chunk and stitch the results.

    Parameters
    ----------
    score_batch:
        Any engine with the ``(profile, database) -> FilterScores``
        signature (:func:`~repro.cpu.msv_score_batch`,
        :func:`~repro.cpu.viterbi_score_batch`, or a warp kernel wrapped
        with ``functools.partial`` for its device arguments).
    chunk_size:
        Maximum sequences per chunk; memory scales with
        ``chunk_size * max_length_in_chunk`` instead of the whole
        database.
    """
    n = len(database)
    scores = np.empty(n, dtype=np.float64)
    overflowed = np.empty(n, dtype=bool)
    for lo, hi in chunk_indices(n, chunk_size):
        part = score_batch(profile, database[lo:hi])
        if len(part) != hi - lo:
            raise KernelError(
                "engine returned a result of the wrong length"
            )
        scores[lo:hi] = part.scores
        overflowed[lo:hi] = part.overflowed
    return FilterScores(scores=scores, overflowed=overflowed)
