"""Posterior decoding: per-residue alignment probabilities and domains.

The full HMMER pipeline follows the Forward stage with posterior
decoding to define domain boundaries.  This module implements the
matrix-retaining Forward/Backward pass over the same local multihit
profile as :mod:`repro.cpu.generic` and derives

* ``match`` / ``insert`` posteriors: ``P(residue i aligned to M_j / I_j)``,
* a per-residue *homology* probability (the residue is emitted by the
  core model rather than the N/C/J flanks),
* contiguous high-homology regions - the domain calls.

Everything is exact (log-space float64); the identity
``sum_j (match + insert)[i] + flank[i] == 1`` per residue is a tested
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from ..hmm.profile import SearchProfile
from .generic import (
    GenericProfile,
    _lse_d_chain,
    _lse_total,
    _reverse_lse_chain,
    _rshift,
    _shift,
)

__all__ = ["PosteriorDecoding", "posterior_decode", "domain_regions"]

_NEG = float("-inf")


@dataclass(frozen=True)
class PosteriorDecoding:
    """Posterior probabilities of one sequence against one profile."""

    score: float            # Forward score (nats)
    match: np.ndarray       # (L, M): P(residue i emitted by M_j)
    insert: np.ndarray      # (L, M): P(residue i emitted by I_j)
    homology: np.ndarray    # (L,):   P(residue i inside a domain)

    @property
    def L(self) -> int:
        return int(self.match.shape[0])

    @property
    def M(self) -> int:
        return int(self.match.shape[1])

    def expected_aligned_residues(self) -> float:
        """Expected number of residues inside domains."""
        return float(self.homology.sum())


def _forward_matrices(gp: GenericProfile, codes: np.ndarray):
    L, M = codes.size, gp.M
    fM = np.full((L, M), _NEG)
    fI = np.full((L, M), _NEG)
    fD = np.full((L, M), _NEG)
    Mp = np.full(M, _NEG)
    Ip = Mp.copy()
    Dp = Mp.copy()
    xN, xJ, xC = 0.0, _NEG, _NEG
    xB = xN + gp.N_move
    with np.errstate(invalid="ignore"):
        for i in range(L):
            rs = gp.msc[int(codes[i])]
            sv = np.logaddexp(xB + gp.tbm, _shift(Mp) + gp.enter_mm)
            sv = np.logaddexp(sv, _shift(Ip) + gp.enter_im)
            sv = np.logaddexp(sv, _shift(Dp) + gp.enter_dm)
            Mv = sv + rs
            Iv = np.logaddexp(Mp + gp.tmi, Ip + gp.tii)
            Dv = _lse_d_chain(Mv + gp.tmd, gp.tdd)
            xE = _lse_total(Mv)
            xN = xN + gp.N_loop
            xJ = np.logaddexp(xJ + gp.J_loop, xE + gp.E_loop)
            xC = np.logaddexp(xC + gp.C_loop, xE + gp.E_move)
            xB = np.logaddexp(xN + gp.N_move, xJ + gp.J_move)
            fM[i], fI[i], fD[i] = Mv, Iv, Dv
            Mp, Ip, Dp = Mv, Iv, Dv
    return fM, fI, float(xC + gp.C_move)


def _backward_matrices(gp: GenericProfile, codes: np.ndarray):
    L, M = codes.size, gp.M
    bM = np.full((L, M), _NEG)
    bI = np.full((L, M), _NEG)
    with np.errstate(invalid="ignore"):
        xC_b = gp.C_move
        xJ_b = _NEG
        xE_b = gp.E_move + xC_b
        rowM = np.full(M, xE_b)
        rowI = np.full(M, _NEG)
        bM[L - 1], bI[L - 1] = rowM, rowI
        for i in range(L - 1, 0, -1):
            em_next = gp.msc[int(codes[i])]
            mj1 = _rshift(rowM)
            emj1 = _rshift(em_next)
            xB_b = _lse_total(gp.tbm + em_next + rowM)
            xC_b = gp.C_loop + xC_b
            xJ_b = np.logaddexp(gp.J_loop + xJ_b, gp.J_move + xB_b)
            xE_b = np.logaddexp(gp.E_move + xC_b, gp.E_loop + xJ_b)
            bD_new = _reverse_lse_chain(gp.tdm + emj1 + mj1, gp.tdd)
            rowM_new = np.logaddexp(np.full(M, xE_b), gp.tmm + emj1 + mj1)
            rowM_new = np.logaddexp(rowM_new, gp.tmi + rowI)
            rowM_new = np.logaddexp(rowM_new, gp.tmd + _rshift(bD_new))
            rowI_new = np.logaddexp(gp.tim + emj1 + mj1, gp.tii + rowI)
            rowM, rowI = rowM_new, rowI_new
            bM[i - 1], bI[i - 1] = rowM, rowI
    return bM, bI


def posterior_decode(
    profile: SearchProfile | GenericProfile, codes: np.ndarray
) -> PosteriorDecoding:
    """Exact posterior decoding of one digital sequence."""
    gp = (
        GenericProfile.from_profile(profile)
        if isinstance(profile, SearchProfile)
        else profile
    )
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise KernelError("codes must be a non-empty 1-D array")
    fM, fI, total = _forward_matrices(gp, codes)
    bM, bI = _backward_matrices(gp, codes)
    with np.errstate(invalid="ignore"):
        pM = np.exp(np.nan_to_num(fM + bM, nan=_NEG) - total)
        pI = np.exp(np.nan_to_num(fI + bI, nan=_NEG) - total)
    homology = np.clip(pM.sum(axis=1) + pI.sum(axis=1), 0.0, 1.0)
    return PosteriorDecoding(
        score=total,
        match=np.clip(pM, 0.0, 1.0),
        insert=np.clip(pI, 0.0, 1.0),
        homology=homology,
    )


def domain_regions(
    decoding: PosteriorDecoding, threshold: float = 0.5, min_length: int = 3
) -> list[tuple[int, int]]:
    """Half-open residue ranges whose homology posterior clears
    ``threshold`` - the domain calls.

    A simple region finder in the spirit of HMMER's domain definition:
    contiguous runs above the threshold, discarding runs shorter than
    ``min_length``.
    """
    if not 0.0 < threshold < 1.0:
        raise KernelError("threshold must be in (0, 1)")
    above = decoding.homology >= threshold
    regions: list[tuple[int, int]] = []
    start: int | None = None
    for i, flag in enumerate(above):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            if i - start >= min_length:
                regions.append((start, i))
            start = None
    if start is not None and decoding.L - start >= min_length:
        regions.append((start, decoding.L))
    return regions
