"""Striped ("Farrar") memory-layout helpers for the SSE baselines.

HMMER 3.0's SIMD filters interleave the model positions across vector
lanes: with ``Q = ceil(M / lanes)`` vectors, vector ``q`` lane ``z`` holds
model position ``k = z * Q + q`` (0-based).  The payoff is that the
diagonal dependency "position k-1, previous row" becomes "vector q-1, same
lane", except at ``q = 0`` where it wraps to ``(Q-1, z-1)`` - handled by a
single lane right-shift per row instead of a horizontal rotate per vector.

These helpers build the index maps and shifted views shared by the striped
MSV and ViterbiFilter engines.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError

__all__ = [
    "stripe_count",
    "stripe_positions",
    "stripe_array",
    "unstripe_array",
    "lane_rightshift",
]


def stripe_count(M: int, lanes: int) -> int:
    """Number of vectors ``Q`` needed to stripe ``M`` positions."""
    if M < 1 or lanes < 1:
        raise KernelError("M and lanes must be positive")
    return -(-M // lanes)


def stripe_positions(M: int, lanes: int) -> np.ndarray:
    """``(Q, lanes)`` matrix of model positions; -1 marks padding slots."""
    Q = stripe_count(M, lanes)
    z, q = np.meshgrid(np.arange(lanes), np.arange(Q))
    k = z * Q + q
    k[k >= M] = -1
    return k


def stripe_array(values: np.ndarray, lanes: int, fill) -> np.ndarray:
    """Rearrange a per-position array into striped ``(Q, lanes)`` layout.

    ``fill`` populates the padding slots (e.g. the maximum byte cost for
    MSV emissions, -32768 for ViterbiFilter scores).
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise KernelError("stripe_array expects a 1-D per-position array")
    M = values.shape[0]
    k = stripe_positions(M, lanes)
    out = np.full(k.shape, fill, dtype=values.dtype)
    valid = k >= 0
    out[valid] = values[k[valid]]
    return out


def unstripe_array(striped: np.ndarray, M: int) -> np.ndarray:
    """Inverse of :func:`stripe_array`, dropping the padding slots."""
    striped = np.asarray(striped)
    if striped.ndim != 2:
        raise KernelError("unstripe_array expects a (Q, lanes) array")
    Q, lanes = striped.shape
    if Q != stripe_count(M, lanes):
        raise KernelError(f"striped shape {striped.shape} does not cover M={M}")
    k = stripe_positions(M, lanes)
    out = np.empty(M, dtype=striped.dtype)
    valid = k >= 0
    out[k[valid]] = striped[valid]
    return out


def lane_rightshift(vec: np.ndarray, fill) -> np.ndarray:
    """Shift lanes up by one (lane z takes lane z-1), inserting ``fill``.

    This is the per-row wrap of the striped layout
    (``esl_sse_rightshift_*`` in HMMER): the value leaving lane
    ``lanes-1`` corresponds to the model position just before position 0
    of the next row sweep and is discarded.
    """
    vec = np.asarray(vec)
    out = np.empty_like(vec)
    out[..., 0] = fill
    out[..., 1:] = vec[..., :-1]
    return out
