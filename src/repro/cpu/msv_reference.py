"""Reference MSV filter: the golden quantized semantics, linear layout.

This is the executable specification of the MSV byte DP that every other
engine (striped SSE baseline, simulated warp kernel) must match
bit-for-bit.  The recurrence per target residue ``x_i`` is::

    mpv[j]  = previous row's M value at node j-1   (j = 0 -> byte 0)
    sv[j]   = sat_sub(sat_add(max(mpv[j], xB - tbm), bias), rbv[x_i][j])
    xE      = max_j sv[j]
    overflow when xE >= 255 - bias  ->  score = +inf
    xJ      = max(xJ, xE - tec)
    xB      = max(base, xJ) - tjb            (all subtractions saturating)

with byte 0 acting as minus infinity.  ``msv_score_batch`` is the
vectorized form the pipeline uses: it processes every sequence in lockstep
rows and is exactly equivalent to per-sequence scoring.
"""

from __future__ import annotations

import numpy as np

from ..constants import MSV_BYTE_MAX
from ..errors import KernelError
from ..scoring.guardrails import GuardrailCounters
from ..scoring.msv_profile import MSVByteProfile
from ..scoring.quantized import sat_add_u8, sat_sub_u8
from ..sequence.database import PaddedBatch, SequenceDatabase
from .results import FilterScores

__all__ = ["msv_score_sequence", "msv_score_batch"]


def msv_score_sequence(
    profile: MSVByteProfile,
    codes: np.ndarray,
    guard: GuardrailCounters | None = None,
) -> float:
    """MSV score (nats) of one digital sequence; +inf on byte overflow.

    ``guard`` tallies DP cells at the u8 ceiling after the biased
    emission add (``saturations``); counting never changes scores.
    """
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise KernelError("codes must be a non-empty 1-D array")
    M = profile.M
    row = np.zeros(M + 1, dtype=np.int32)  # row[j+1] = M value at node j
    xJ = 0
    xB = profile.init_xB
    for x in codes:
        rbv = profile.rbv[int(x)]
        xBv = max(0, xB - profile.tbm)
        sv = np.maximum(row[:M], xBv)
        sv = sat_add_u8(sv, profile.bias)
        if guard is not None:
            guard.saturations += int(np.count_nonzero(sv == MSV_BYTE_MAX))
        sv = sat_sub_u8(sv, rbv)
        row[1:] = sv
        xE = int(sv.max())
        if xE >= profile.overflow_threshold:
            return float("inf")
        xJ = max(xJ, max(0, xE - profile.tec))
        xB = max(0, max(profile.base, xJ) - profile.tjb)
    return profile.final_score_nats(xJ)


def msv_score_batch(
    profile: MSVByteProfile,
    batch: PaddedBatch | SequenceDatabase,
    guard: GuardrailCounters | None = None,
) -> FilterScores:
    """MSV scores for a whole database, lockstep-vectorized across rows.

    Semantics are identical to calling :func:`msv_score_sequence` on every
    sequence: rows beyond a sequence's length leave its state untouched,
    and overflow is latched per sequence at the row where it occurs.
    ``guard.saturations`` counts DP cells at the u8 ceiling after the
    biased emission add, over lanes still live - the same tally the warp
    kernel keeps in ``KernelCounters.saturations``.
    """
    if isinstance(batch, SequenceDatabase):
        batch = batch.padded_batch()
    n, width = batch.n_seqs, batch.max_len
    M = profile.M
    rows = np.zeros((n, M + 1), dtype=np.int32)
    xJ = np.zeros(n, dtype=np.int32)
    xB = np.full(n, profile.init_xB, dtype=np.int32)
    overflowed = np.zeros(n, dtype=bool)

    for i in range(width):
        active = batch.lengths > i
        if not active.any():
            break
        codes = batch.codes[:, i].astype(np.intp)
        # padded slots carry code 31 which indexes nothing; map them to 0,
        # the 'active' mask discards their results anyway
        codes = np.where(active, codes, 0)
        rbv = profile.rbv[codes]  # (n, M)
        xBv = np.maximum(0, xB - profile.tbm)[:, None]
        live = active & ~overflowed
        sv = np.maximum(rows[:, :M], xBv)
        sv = sat_add_u8(sv, profile.bias)
        if guard is not None:
            guard.saturations += int(
                np.count_nonzero(sv[live] == MSV_BYTE_MAX)
            )
        sv = sat_sub_u8(sv, rbv)
        xE = sv.max(axis=1)
        update = live.copy()  # `&=` below must not alias the guard mask
        rows[update, 1:] = sv[update]
        overflow_now = update & (xE >= profile.overflow_threshold)
        overflowed |= overflow_now
        update &= ~overflow_now
        xJ[update] = np.maximum(
            xJ[update], np.maximum(0, xE[update] - profile.tec)
        )
        xB[update] = np.maximum(
            0, np.maximum(profile.base, xJ[update]) - profile.tjb
        )

    scores = np.array([profile.final_score_nats(int(v)) for v in xJ])
    scores[overflowed] = float("inf")
    return FilterScores(scores=scores, overflowed=overflowed)
