"""CPU engines: golden references, striped SSE baselines, float generics."""

from .forward_batch import forward_score_batch
from .generic import (
    GenericProfile,
    generic_backward_score,
    generic_forward_score,
    generic_viterbi_score,
)
from .msv_reference import msv_score_batch, msv_score_sequence
from .hmmalign import align_to_profile
from .posterior import PosteriorDecoding, domain_regions, posterior_decode
from .traceback import (
    DomainAlignment,
    PathStep,
    ViterbiAlignment,
    viterbi_traceback,
)
from .msv_striped import (
    SSE_BYTE_LANES,
    msv_score_sequence_striped,
    msv_striped_profile,
)
from .results import FilterScores
from .streaming import chunk_indices, score_in_chunks
from .striped import (
    lane_rightshift,
    stripe_array,
    stripe_count,
    stripe_positions,
    unstripe_array,
)
from .viterbi_reference import (
    exact_d_chain,
    viterbi_score_batch,
    viterbi_score_sequence,
)
from .viterbi_striped import (
    SSE_WORD_LANES,
    StripedViterbiProfile,
    viterbi_score_sequence_striped,
)

__all__ = [
    "FilterScores",
    "msv_score_sequence",
    "msv_score_batch",
    "msv_score_sequence_striped",
    "msv_striped_profile",
    "SSE_BYTE_LANES",
    "viterbi_score_sequence",
    "viterbi_score_batch",
    "viterbi_score_sequence_striped",
    "StripedViterbiProfile",
    "SSE_WORD_LANES",
    "exact_d_chain",
    "GenericProfile",
    "generic_viterbi_score",
    "generic_forward_score",
    "generic_backward_score",
    "forward_score_batch",
    "PosteriorDecoding",
    "posterior_decode",
    "domain_regions",
    "viterbi_traceback",
    "ViterbiAlignment",
    "DomainAlignment",
    "PathStep",
    "align_to_profile",
    "score_in_chunks",
    "chunk_indices",
    "stripe_count",
    "stripe_positions",
    "stripe_array",
    "unstripe_array",
    "lane_rightshift",
]
