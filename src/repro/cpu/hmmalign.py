"""``hmmalign``-style multiple alignment of sequences to a profile.

Each sequence is Viterbi-aligned to the model; the per-sequence paths
are then merged into one multiple alignment whose columns are the model's
match states, with lowercase insert columns padded to the widest insert
run observed at each position (HMMER's alignment convention: match
residues uppercase, deletions ``-``, inserts lowercase, insert padding
``.``).
"""

from __future__ import annotations

from collections.abc import Sequence as AbcSequence

import numpy as np

from ..alphabet import AMINO
from ..errors import KernelError
from ..hmm.profile import SearchProfile
from .generic import GenericProfile
from .traceback import viterbi_traceback

__all__ = ["align_to_profile"]


def _sequence_columns(gp: GenericProfile, codes: np.ndarray):
    """Per-model-node characters and insert runs for one sequence."""
    alignment = viterbi_traceback(gp, codes)
    if not alignment.domains:
        raise KernelError("sequence has no aligned domain")
    # use the longest domain (hmmalign aligns the full sequence; for the
    # multihit corner we keep the dominant hit)
    domain = max(alignment.domains, key=lambda d: len(d.steps))
    match_char = ["-"] * gp.M
    inserts: dict[int, list[str]] = {}
    seen_node = np.zeros(gp.M, dtype=bool)
    for step in domain.steps:
        if step.state == "M":
            match_char[step.node] = AMINO.symbols[int(codes[step.residue])]
            seen_node[step.node] = True
        elif step.state == "D":
            match_char[step.node] = "-"
            seen_node[step.node] = True
        elif step.state == "I":
            inserts.setdefault(step.node, []).append(
                AMINO.symbols[int(codes[step.residue])].lower()
            )
    # nodes outside the local alignment render as '-' too (local align)
    return match_char, inserts


def align_to_profile(
    profile: SearchProfile | GenericProfile,
    sequences: AbcSequence,
) -> list[str]:
    """Align sequences to the profile; returns equal-width MSA rows.

    ``sequences`` may be :class:`~repro.sequence.DigitalSequence` objects
    or raw digital code arrays.
    """
    gp = (
        GenericProfile.from_profile(profile)
        if isinstance(profile, SearchProfile)
        else profile
    )
    if len(sequences) == 0:
        raise KernelError("nothing to align")
    per_seq = []
    for seq in sequences:
        codes = np.asarray(getattr(seq, "codes", seq))
        per_seq.append(_sequence_columns(gp, codes))

    # widest insert run after each node across all sequences
    widths = np.zeros(gp.M, dtype=int)
    for _, inserts in per_seq:
        for node, run in inserts.items():
            widths[node] = max(widths[node], len(run))

    rows = []
    for match_char, inserts in per_seq:
        parts = []
        for j in range(gp.M):
            parts.append(match_char[j])
            if widths[j]:
                run = inserts.get(j, [])
                parts.append("".join(run).ljust(int(widths[j]), "."))
        rows.append("".join(parts))
    assert len({len(r) for r in rows}) == 1
    return rows
