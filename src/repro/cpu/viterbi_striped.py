"""Striped SSE ViterbiFilter with serial Lazy-F - the CPU baseline.

Reproduces HMMER 3.0's ``vitfilter.c`` lane-for-lane: 8 signed 16-bit
lanes per 128-bit vector, Farrar striped layout, and the *Lazy-F*
treatment of the Delete chain: the main loop stores only the M->D
contribution, then fixed-point passes propagate D->D until a pass makes
no improvement.  Because every D->D step cost is non-positive the fixed
point equals the exact chain, so scores are bit-identical to
:mod:`repro.cpu.viterbi_reference` (tested).

The paper's GPU contribution ports exactly this Lazy-F idea to SIMT
warps, replacing the serial column sweep with 32 lanes and a warp vote
(:mod:`repro.kernels.lazy_f`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import VF_WORD_MIN
from ..errors import KernelError
from ..scoring.quantized import sat_add_i16
from ..scoring.vit_profile import ViterbiWordProfile
from .striped import lane_rightshift, stripe_array, stripe_count

__all__ = [
    "SSE_WORD_LANES",
    "StripedViterbiProfile",
    "viterbi_score_sequence_striped",
]

#: 16-bit lanes in one 128-bit SSE register.
SSE_WORD_LANES = 8


@dataclass(frozen=True)
class StripedViterbiProfile:
    """Pre-striped word profile: all arrays ``(Q, lanes)`` (emissions
    ``(Kp, Q, lanes)``), padding slots filled with -32768."""

    base: ViterbiWordProfile
    lanes: int
    Q: int
    rwv: np.ndarray
    enter_mm: np.ndarray
    enter_im: np.ndarray
    enter_dm: np.ndarray
    tmi: np.ndarray
    tii: np.ndarray
    tmd: np.ndarray
    tdd: np.ndarray

    @classmethod
    def from_profile(
        cls, profile: ViterbiWordProfile, lanes: int = SSE_WORD_LANES
    ) -> "StripedViterbiProfile":
        if lanes < 2:
            raise KernelError("striping needs at least 2 lanes")
        Q = stripe_count(profile.M, lanes)
        stripe = lambda a: stripe_array(a, lanes, fill=VF_WORD_MIN)  # noqa: E731
        Kp = profile.rwv.shape[0]
        rwv = np.empty((Kp, Q, lanes), dtype=np.int32)
        for x in range(Kp):
            rwv[x] = stripe(profile.rwv[x])
        return cls(
            base=profile,
            lanes=lanes,
            Q=Q,
            rwv=rwv,
            enter_mm=stripe(profile.enter_mm),
            enter_im=stripe(profile.enter_im),
            enter_dm=stripe(profile.enter_dm),
            tmi=stripe(profile.tmi),
            tii=stripe(profile.tii),
            tmd=stripe(profile.tmd),
            tdd=stripe(profile.tdd),
        )


def _lazy_f(DMX: np.ndarray, dcv: np.ndarray, tdd: np.ndarray) -> int:
    """Serial Lazy-F fixed point; returns the number of passes executed.

    ``DMX`` holds the per-column M->D contributions; ``dcv`` is the carry
    leaving the last column of the main loop.  Mutates ``DMX`` in place.
    """
    Q = DMX.shape[0]
    passes = 0
    # first pass is unconditional, as in vitfilter.c
    dcv = lane_rightshift(dcv, VF_WORD_MIN)
    for q in range(Q):
        DMX[q] = np.maximum(DMX[q], dcv)
        dcv = sat_add_i16(DMX[q], tdd[q])
    passes += 1
    while True:
        dcv = lane_rightshift(dcv, VF_WORD_MIN)
        completed = True
        for q in range(Q):
            if not np.any(dcv > DMX[q]):
                completed = False
                break
            DMX[q] = np.maximum(DMX[q], dcv)
            dcv = sat_add_i16(DMX[q], tdd[q])
        passes += 1
        if not completed:
            return passes


def viterbi_score_sequence_striped(
    profile: ViterbiWordProfile | StripedViterbiProfile,
    codes: np.ndarray,
    lanes: int = SSE_WORD_LANES,
) -> float:
    """ViterbiFilter score (nats) via the striped SSE + Lazy-F algorithm."""
    if isinstance(profile, ViterbiWordProfile):
        sp = StripedViterbiProfile.from_profile(profile, lanes)
    else:
        sp = profile
    base = sp.base
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise KernelError("codes must be a non-empty 1-D array")

    Q, L = sp.Q, sp.lanes
    MMX = np.full((Q, L), VF_WORD_MIN, dtype=np.int32)
    IMX = MMX.copy()
    DMX = MMX.copy()
    xJ = VF_WORD_MIN
    xC = VF_WORD_MIN
    xB = base.init_xB

    for x in codes:
        rsc = sp.rwv[int(x)]
        xBv = sat_add_i16(np.int32(xB), np.int32(base.tbm))
        mpv = lane_rightshift(MMX[Q - 1], VF_WORD_MIN)
        ipv = lane_rightshift(IMX[Q - 1], VF_WORD_MIN)
        dpv = lane_rightshift(DMX[Q - 1], VF_WORD_MIN)
        dcv = np.full(L, VF_WORD_MIN, dtype=np.int32)
        xEv = np.full(L, VF_WORD_MIN, dtype=np.int32)
        for q in range(Q):
            sv = np.maximum(xBv, sat_add_i16(mpv, sp.enter_mm[q]))
            sv = np.maximum(sv, sat_add_i16(ipv, sp.enter_im[q]))
            sv = np.maximum(sv, sat_add_i16(dpv, sp.enter_dm[q]))
            sv = sat_add_i16(sv, rsc[q])
            xEv = np.maximum(xEv, sv)
            # load previous-row vectors of this column before overwriting
            mpv, ipv, dpv = MMX[q].copy(), IMX[q].copy(), DMX[q].copy()
            MMX[q] = sv
            DMX[q] = dcv
            dcv = sat_add_i16(sv, sp.tmd[q])
            IMX[q] = np.maximum(
                sat_add_i16(mpv, sp.tmi[q]), sat_add_i16(ipv, sp.tii[q])
            )
        _lazy_f(DMX, dcv, sp.tdd)
        xE = int(xEv.max())
        if xE >= base.overflow_threshold:
            return float("inf")
        xC = max(xC, xE + base.xE_move)
        xJ = max(xJ, xE + base.xE_loop)
        xB = max(base.base + base.xNJ_move, xJ + base.xNJ_move)
    if xC == VF_WORD_MIN:
        return float("-inf")
    return base.final_score_nats(xC)
