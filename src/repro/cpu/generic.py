"""Full-precision generic engines: Viterbi, Forward and Backward.

These are the float64, natural-log-space implementations of the Plan-7
local search model - the unquantized ground truth the filters approximate,
and the engine behind the pipeline's final Forward stage.  The recurrence
uses the same node convention as the word profile: ``enter_*[j]`` is the
cost of reaching node ``j`` from node ``j-1``.

The within-row Delete chain (max-plus for Viterbi, log-sum-exp for
Forward) is vectorized with a cumulative-transform trick: with
``C[k] = sum of chain costs``, every chain value is
``inject[m] + C[k] - C[m]``, i.e. a cumulative sum plus a running
max / log-sum-exp.  Impossible (-inf) D->D links split the positions into
independent segments so infinities never enter the cumulative sums (which
would otherwise destroy float precision).

The identity ``forward_score == backward_score`` (to float tolerance) is
enforced by the test suite, which pins both recurrences against each
other; Backward is implemented independently as a suffix recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from ..hmm.profile import SearchProfile

__all__ = [
    "GenericProfile",
    "generic_viterbi_score",
    "generic_forward_score",
    "generic_backward_score",
]

_NEG = float("-inf")


@dataclass(frozen=True)
class GenericProfile:
    """Float score arrays laid out for the generic engines."""

    M: int
    msc: np.ndarray       # (Kp, M)
    tbm: float
    enter_mm: np.ndarray  # (M,) destination-indexed (cost into node j)
    enter_im: np.ndarray
    enter_dm: np.ndarray
    tmi: np.ndarray       # (M,) source-indexed
    tii: np.ndarray
    tmd: np.ndarray
    tdd: np.ndarray
    tmm: np.ndarray       # (M,) source-indexed copies (Backward needs them)
    tim: np.ndarray
    tdm: np.ndarray
    E_move: float
    E_loop: float
    N_loop: float
    N_move: float
    C_loop: float
    C_move: float
    J_loop: float
    J_move: float

    @classmethod
    def from_profile(cls, profile: SearchProfile) -> "GenericProfile":
        def shifted(t: np.ndarray) -> np.ndarray:
            return np.concatenate(([_NEG], t[:-1]))

        sp = profile.specials
        return cls(
            M=profile.M,
            msc=profile.msc,
            tbm=profile.tbm,
            enter_mm=shifted(profile.tmm),
            enter_im=shifted(profile.tim),
            enter_dm=shifted(profile.tdm),
            tmi=profile.tmi,
            tii=profile.tii,
            tmd=profile.tmd,
            tdd=profile.tdd,
            tmm=profile.tmm,
            tim=profile.tim,
            tdm=profile.tdm,
            E_move=sp.E_move,
            E_loop=sp.E_loop,
            N_loop=sp.N_loop,
            N_move=sp.N_move,
            C_loop=sp.C_loop,
            C_move=sp.C_move,
            J_loop=sp.J_loop,
            J_move=sp.J_move,
        )


def _coerce(profile: SearchProfile | GenericProfile) -> GenericProfile:
    if isinstance(profile, SearchProfile):
        return GenericProfile.from_profile(profile)
    return profile


def _check_codes(codes: np.ndarray) -> np.ndarray:
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise KernelError("codes must be a non-empty 1-D array")
    return codes


def _forward_segments(M: int, tdd: np.ndarray) -> list[tuple[int, int]]:
    """Half-open position ranges for the forward-direction Delete chain.

    The chain step into position ``j`` uses ``tdd[j-1]``; a -inf link
    there makes ``j`` start a new segment.
    """
    if M == 1:
        return [(0, 1)]
    bad = np.flatnonzero(~np.isfinite(tdd[: M - 1]))
    starts = np.concatenate(([0], bad + 1))
    starts = np.unique(starts)
    ends = np.concatenate((starts[1:], [M]))
    return list(zip(starts.tolist(), ends.tolist()))


def _d_chain(inject: np.ndarray, tdd: np.ndarray, combine_accumulate) -> np.ndarray:
    """Shared forward Delete-chain scan.

    Solves ``D[j] = combine(inject[j], D[j-1] + tdd[j-1])`` with
    ``D[-1] = -inf``, where ``inject[j]`` is the M->D hop arriving at
    ``j`` and ``combine`` is max (Viterbi) or log-sum-exp (Forward).
    """
    M = inject.shape[0]
    D = np.full(M, _NEG)
    for lo, hi in _forward_segments(M, tdd):
        n = hi - lo
        if n == 1:
            D[lo] = inject[lo]
            continue
        c = np.concatenate(([0.0], np.cumsum(tdd[lo : hi - 1])))  # C[k]
        g = inject[lo:hi] - c
        with np.errstate(invalid="ignore"):
            h = combine_accumulate(g)
        D[lo:hi] = c + h
    return D


def _max_d_chain(start: np.ndarray, tdd: np.ndarray) -> np.ndarray:
    """Viterbi Delete chain; ``start[i] = M[i] + tmd[i]`` enters ``i+1``."""
    inject = np.concatenate(([_NEG], start[:-1]))
    return _d_chain(inject, tdd, np.maximum.accumulate)


def _lse_d_chain(start: np.ndarray, tdd: np.ndarray) -> np.ndarray:
    """Forward Delete chain (log-sum-exp semiring)."""
    inject = np.concatenate(([_NEG], start[:-1]))
    return _d_chain(inject, tdd, np.logaddexp.accumulate)


def _shift(a: np.ndarray) -> np.ndarray:
    """Value at node j-1 aligned to node j (node 0 gets -inf)."""
    out = np.empty_like(a)
    out[0] = _NEG
    out[1:] = a[:-1]
    return out


def _rshift(a: np.ndarray) -> np.ndarray:
    """Value at node j+1 aligned to node j (node M-1 gets -inf)."""
    out = np.empty_like(a)
    out[-1] = _NEG
    out[:-1] = a[1:]
    return out


def _lse_total(values: np.ndarray) -> float:
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return _NEG
    mx = finite.max()
    return float(mx + np.log(np.exp(finite - mx).sum()))


def generic_viterbi_score(
    profile: SearchProfile | GenericProfile, codes: np.ndarray
) -> float:
    """Optimal-alignment (Viterbi) log-odds score in nats, full precision."""
    gp = _coerce(profile)
    codes = _check_codes(codes)
    M = gp.M
    Mp = np.full(M, _NEG)
    Ip = Mp.copy()
    Dp = Mp.copy()
    xN, xJ, xC = 0.0, _NEG, _NEG
    xB = xN + gp.N_move
    with np.errstate(invalid="ignore"):
        for x in codes:
            rs = gp.msc[int(x)]
            sv = np.maximum(xB + gp.tbm, _shift(Mp) + gp.enter_mm)
            sv = np.maximum(sv, _shift(Ip) + gp.enter_im)
            sv = np.maximum(sv, _shift(Dp) + gp.enter_dm)
            Mv = sv + rs
            Iv = np.maximum(Mp + gp.tmi, Ip + gp.tii)
            Dv = _max_d_chain(Mv + gp.tmd, gp.tdd)
            xE = float(Mv.max())
            xN = xN + gp.N_loop
            xJ = max(xJ + gp.J_loop, xE + gp.E_loop)
            xC = max(xC + gp.C_loop, xE + gp.E_move)
            xB = max(xN + gp.N_move, xJ + gp.J_move)
            Mp, Ip, Dp = Mv, Iv, Dv
    return xC + gp.C_move


def generic_forward_score(
    profile: SearchProfile | GenericProfile, codes: np.ndarray
) -> float:
    """Forward log-odds score in nats: sum over all alignments."""
    gp = _coerce(profile)
    codes = _check_codes(codes)
    M = gp.M
    Mp = np.full(M, _NEG)
    Ip = Mp.copy()
    Dp = Mp.copy()
    xN, xJ, xC = 0.0, _NEG, _NEG
    xB = xN + gp.N_move
    with np.errstate(invalid="ignore"):
        for x in codes:
            rs = gp.msc[int(x)]
            sv = np.logaddexp(xB + gp.tbm, _shift(Mp) + gp.enter_mm)
            sv = np.logaddexp(sv, _shift(Ip) + gp.enter_im)
            sv = np.logaddexp(sv, _shift(Dp) + gp.enter_dm)
            Mv = sv + rs
            Iv = np.logaddexp(Mp + gp.tmi, Ip + gp.tii)
            Dv = _lse_d_chain(Mv + gp.tmd, gp.tdd)
            xE = _lse_total(Mv)  # free local exit from every match state
            xN = xN + gp.N_loop
            xJ = np.logaddexp(xJ + gp.J_loop, xE + gp.E_loop)
            xC = np.logaddexp(xC + gp.C_loop, xE + gp.E_move)
            xB = np.logaddexp(xN + gp.N_move, xJ + gp.J_move)
            Mp, Ip, Dp = Mv, Iv, Dv
    return float(xC + gp.C_move)


def _reverse_lse_chain(start: np.ndarray, tdd: np.ndarray) -> np.ndarray:
    """Reverse Delete chain: ``bD[j] = lse(start[j], tdd[j] + bD[j+1])``.

    ``start[j]`` is the D_j -> M_{j+1} contribution.  Solved right to
    left with the same segmented cumulative transform.
    """
    M = start.shape[0]
    s = start[::-1]
    t = tdd[::-1]  # r[k] = lse(s[k], t[k] + r[k-1])
    out = np.full(M, _NEG)
    bad = np.flatnonzero(~np.isfinite(t))
    starts = np.unique(np.concatenate(([0], bad)))
    ends = np.concatenate((starts[1:], [M]))
    for lo, hi in zip(starts.tolist(), ends.tolist()):
        n = hi - lo
        if n == 1:
            out[lo] = s[lo]
            continue
        c = np.concatenate(([0.0], np.cumsum(t[lo + 1 : hi])))  # C[k], C[0]=0
        g = s[lo:hi] - c
        with np.errstate(invalid="ignore"):
            u = np.logaddexp.accumulate(g)
        out[lo:hi] = c + u
    return out[::-1]


def generic_backward_score(
    profile: SearchProfile | GenericProfile, codes: np.ndarray
) -> float:
    """Backward log-odds score in nats; equals the Forward score."""
    gp = _coerce(profile)
    codes = _check_codes(codes)
    L = codes.size
    M = gp.M

    with np.errstate(invalid="ignore"):
        # row L: all residues emitted; only exit paths remain.
        xC_b = gp.C_move
        xJ_b = _NEG
        xN_b = _NEG
        xE_b = gp.E_move + xC_b
        bM = np.full(M, xE_b)  # M_j -> E with free local exit
        bI = np.full(M, _NEG)
        bD = np.full(M, _NEG)  # no D -> E exit in this model

        for i in range(L - 1, -1, -1):
            em_next = gp.msc[int(codes[i])]  # residue consumed entering row i+1
            mj1 = _rshift(bM)                # bM[i+1] at node j+1
            emj1 = _rshift(em_next)
            # specials at row i (before overwriting core rows)
            xB_b = _lse_total(gp.tbm + em_next + bM)
            xC_b = gp.C_loop + xC_b
            xJ_b = np.logaddexp(gp.J_loop + xJ_b, gp.J_move + xB_b)
            xE_b = np.logaddexp(gp.E_move + xC_b, gp.E_loop + xJ_b)
            xN_b = np.logaddexp(gp.N_loop + xN_b, gp.N_move + xB_b)
            # core states at row i
            bD_new = _reverse_lse_chain(gp.tdm + emj1 + mj1, gp.tdd)
            bM_new = np.logaddexp(np.full(M, xE_b), gp.tmm + emj1 + mj1)
            bM_new = np.logaddexp(bM_new, gp.tmi + bI)
            bM_new = np.logaddexp(bM_new, gp.tmd + _rshift(bD_new))
            bI_new = np.logaddexp(gp.tim + emj1 + mj1, gp.tii + bI)
            bM, bI, bD = bM_new, bI_new, bD_new

        # S -> N is free; N at row 0 must route through xN_b
    return float(xN_b)
