"""Striped SSE MSV filter - the CPU baseline the paper compares against.

HMMER 3.0's ``msvfilter.c`` processes 16 model positions per 128-bit SSE
vector using saturating unsigned bytes and the Farrar striped layout.
This module reproduces that implementation lane-for-lane: ``Q = ceil(M/16)``
vectors per row, the previous-row diagonal obtained by a single lane
right-shift of vector ``Q-1``, and no synchronization anywhere - the
property the paper's warp-synchronous GPU kernel is designed to preserve.

Scores are bit-identical to :mod:`repro.cpu.msv_reference` (tested); the
performance of the *modelled* SSE hardware comes from
:mod:`repro.perf.cost_model`, not from timing this Python simulation.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..scoring.msv_profile import MSVByteProfile
from ..scoring.quantized import sat_add_u8, sat_sub_u8
from .striped import lane_rightshift, stripe_array, stripe_count

__all__ = ["SSE_BYTE_LANES", "msv_striped_profile", "msv_score_sequence_striped"]

#: 8-bit lanes in one 128-bit SSE register.
SSE_BYTE_LANES = 16


def msv_striped_profile(profile: MSVByteProfile, lanes: int = SSE_BYTE_LANES):
    """Pre-stripe the emission costs: ``(Kp, Q, lanes)`` biased bytes.

    Padding slots get the maximum byte cost so they pin their cells at 0
    (minus infinity) and can never contribute to xE.
    """
    if lanes < 2:
        raise KernelError("striping needs at least 2 lanes")
    Kp = profile.rbv.shape[0]
    Q = stripe_count(profile.M, lanes)
    out = np.empty((Kp, Q, lanes), dtype=np.int32)
    for x in range(Kp):
        out[x] = stripe_array(profile.rbv[x], lanes, fill=255)
    return out


def msv_score_sequence_striped(
    profile: MSVByteProfile,
    codes: np.ndarray,
    lanes: int = SSE_BYTE_LANES,
    striped_rbv: np.ndarray | None = None,
) -> float:
    """MSV score (nats) via the striped SSE algorithm; +inf on overflow."""
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise KernelError("codes must be a non-empty 1-D array")
    if striped_rbv is None:
        striped_rbv = msv_striped_profile(profile, lanes)
    Q = stripe_count(profile.M, lanes)
    dp = np.zeros((Q, lanes), dtype=np.int32)
    xJ = 0
    xB = profile.init_xB
    for x in codes:
        rsc = striped_rbv[int(x)]
        xBv = max(0, xB - profile.tbm)
        # diagonal dependency for q=0 wraps from (Q-1, z-1)
        mpv = lane_rightshift(dp[Q - 1], fill=0)
        xEv = np.zeros(lanes, dtype=np.int32)
        for q in range(Q):
            sv = np.maximum(mpv, xBv)
            sv = sat_add_u8(sv, profile.bias)
            sv = sat_sub_u8(sv, rsc[q])
            xEv = np.maximum(xEv, sv)
            mpv = dp[q].copy()
            dp[q] = sv
        xE = int(xEv.max())  # horizontal max across the 16 lanes
        if xE >= profile.overflow_threshold:
            return float("inf")
        xJ = max(xJ, max(0, xE - profile.tec))
        xB = max(0, max(profile.base, xJ) - profile.tjb)
    return profile.final_score_nats(xJ)
