"""Reference P7Viterbi filter: the golden word-quantized semantics.

Executable specification of HMMER 3.0's ``ViterbiFilter`` (16-bit words,
-32768 = minus infinity, +32767 = overflow sentinel) in linear layout.
The per-row recurrence for target residue ``x_i`` at node ``j`` (0-based)::

    Mv[j] = sat(max( xB + tbm,
                     Mp[j-1] + enter_mm[j],
                     Ip[j-1] + enter_im[j],
                     Dp[j-1] + enter_dm[j] ) + rwv[x_i][j])
    Iv[j] = sat(max( Mp[j] + tmi[j],  Ip[j] + tii[j] ))
    Dv[j] = max( Mv[j-1] + tmd[j-1],  Dv[j-1] + tdd[j-1] )   (within-row chain)
    xE    = max_j Mv[j]
    xC    = max(xC, xE + E_move);  xJ = max(xJ, xE + E_loop)
    xB    = max(base + NJ_move, xJ + NJ_move)

Saturating adds are applied exactly where HMMER applies them.  The D
within-row chain is computed *exactly* with a max-plus prefix scan (see
``_exact_d_chain``): because every D->D step cost is non-positive, the
scan followed by flooring at -32768 is provably identical to the serial
saturating recurrence - the property that lets the striped Lazy-F and the
warp-parallel Lazy-F terminate early without changing any score.
"""

from __future__ import annotations

import numpy as np

from ..constants import VF_WORD_MIN
from ..errors import KernelError
from ..scoring.guardrails import GuardrailCounters
from ..scoring.quantized import sat_add_i16
from ..scoring.vit_profile import ViterbiWordProfile
from ..sequence.database import PaddedBatch, SequenceDatabase
from .results import FilterScores

__all__ = ["viterbi_score_sequence", "viterbi_score_batch", "exact_d_chain"]


def exact_d_chain(m_row: np.ndarray, tmd: np.ndarray, tdd: np.ndarray) -> np.ndarray:
    """Exact within-row Delete chain via a max-plus prefix scan.

    ``D[j] = max(M[j-1] + tmd[j-1], D[j-1] + tdd[j-1])`` with ``D[0] =
    -inf``, floored at -32768.  Vectorized over the trailing axis; works
    on ``(M,)`` rows and ``(n, M)`` batches alike.

    Decomposition: with ``c[j] = sum_{t<j} tdd[t]`` every chain that
    starts at node ``i`` contributes ``start[i] + c[j] - c[i+1]``, so
    ``D[j] = c[j] + max_{i<j}(start[i] - c[i+1])`` - a cumulative sum and
    a running maximum.  All D->D costs are <= 0, which makes flooring at
    the end equivalent to flooring every intermediate (saturating) step.
    """
    m_row = np.asarray(m_row, dtype=np.int64)
    M = m_row.shape[-1]
    if tmd.shape != (M,) or tdd.shape != (M,):
        raise KernelError("transition arrays must match the row length")
    start = np.clip(m_row + tmd, VF_WORD_MIN, None)  # sat_add on stored M
    # c[j] = sum of tdd[t] for t < j; depends only on the profile (1-D)
    c = np.concatenate(
        ([0], np.cumsum(tdd.astype(np.int64)))
    )  # length M+1; c[M] unused below
    g = start - c[1 : M + 1]  # g[i] = start[i] - c[i+1], broadcasts over batch
    h = np.maximum.accumulate(g, axis=-1)
    out = np.full(m_row.shape, VF_WORD_MIN, dtype=np.int64)
    out[..., 1:] = np.clip(c[1:M] + h[..., :-1], VF_WORD_MIN, None)
    return out.astype(np.int32)


def _row_update(profile, codes, Mp, Ip, Dp, xB):
    """One DP row for a batch; returns (Mv, Iv, Dv, xE)."""
    rwv = profile.rwv[codes]  # (n, M)
    shift = lambda a: np.concatenate(  # noqa: E731 - local one-liner
        [np.full(a.shape[:-1] + (1,), VF_WORD_MIN, dtype=np.int32), a[..., :-1]],
        axis=-1,
    )
    sv = sat_add_i16(np.asarray(xB)[..., None], profile.tbm)
    sv = np.maximum(sv, sat_add_i16(shift(Mp), profile.enter_mm))
    sv = np.maximum(sv, sat_add_i16(shift(Ip), profile.enter_im))
    sv = np.maximum(sv, sat_add_i16(shift(Dp), profile.enter_dm))
    Mv = sat_add_i16(sv, rwv)
    Iv = np.maximum(
        sat_add_i16(Mp, profile.tmi), sat_add_i16(Ip, profile.tii)
    ).astype(np.int32)
    Dv = exact_d_chain(Mv, profile.tmd, profile.tdd)
    xE = Mv.max(axis=-1)
    return Mv.astype(np.int32), Iv, Dv, xE


def viterbi_score_sequence(
    profile: ViterbiWordProfile,
    codes: np.ndarray,
    guard: GuardrailCounters | None = None,
) -> float:
    """ViterbiFilter score (nats) of one sequence; +inf on word overflow.

    ``guard.saturations`` counts M-row cells pinned at the i16 floor
    (-32768, the filter's minus infinity); counting never changes scores.
    """
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise KernelError("codes must be a non-empty 1-D array")
    M = profile.M
    Mp = np.full(M, VF_WORD_MIN, dtype=np.int32)
    Ip = Mp.copy()
    Dp = Mp.copy()
    xJ = VF_WORD_MIN
    xC = VF_WORD_MIN
    xB = profile.init_xB
    for x in codes:
        Mp, Ip, Dp, xE = _row_update(profile, int(x), Mp, Ip, Dp, xB)
        if guard is not None:
            guard.saturations += int(np.count_nonzero(Mp == VF_WORD_MIN))
        xE = int(xE)
        if xE >= profile.overflow_threshold:
            return float("inf")
        xC = max(xC, xE + profile.xE_move)
        xJ = max(xJ, xE + profile.xE_loop)
        xB = max(profile.base + profile.xNJ_move, xJ + profile.xNJ_move)
    if xC == VF_WORD_MIN:
        return float("-inf")
    return profile.final_score_nats(xC)


def viterbi_score_batch(
    profile: ViterbiWordProfile,
    batch: PaddedBatch | SequenceDatabase,
    guard: GuardrailCounters | None = None,
) -> FilterScores:
    """ViterbiFilter scores for a whole database, lockstep across rows.

    Exactly equivalent to per-sequence scoring; inactive and overflowed
    sequences stop updating their state.  ``guard.saturations`` counts
    M-row cells pinned at the i16 floor over live lanes - the same tally
    the warp kernel keeps in ``KernelCounters.saturations``.
    """
    if isinstance(batch, SequenceDatabase):
        batch = batch.padded_batch()
    n = batch.n_seqs
    M = profile.M
    Mp = np.full((n, M), VF_WORD_MIN, dtype=np.int32)
    Ip = Mp.copy()
    Dp = Mp.copy()
    xJ = np.full(n, VF_WORD_MIN, dtype=np.int64)
    xC = xJ.copy()
    xB = np.full(n, profile.init_xB, dtype=np.int64)
    overflowed = np.zeros(n, dtype=bool)

    for i in range(batch.max_len):
        active = batch.lengths > i
        if not active.any():
            break
        codes = np.where(active, batch.codes[:, i], 0).astype(np.intp)
        Mv, Iv, Dv, xE = _row_update(profile, codes, Mp, Ip, Dp, xB)
        update = active & ~overflowed
        if guard is not None:
            guard.saturations += int(
                np.count_nonzero(Mv[update] == VF_WORD_MIN)
            )
        Mp[update], Ip[update], Dp[update] = Mv[update], Iv[update], Dv[update]
        overflow_now = update & (xE >= profile.overflow_threshold)
        overflowed |= overflow_now
        update &= ~overflow_now
        xC[update] = np.maximum(xC[update], xE[update] + profile.xE_move)
        xJ[update] = np.maximum(xJ[update], xE[update] + profile.xE_loop)
        xB[update] = np.maximum(
            profile.base + profile.xNJ_move, xJ[update] + profile.xNJ_move
        )

    scores = np.where(
        xC == VF_WORD_MIN,
        float("-inf"),
        (xC + profile.xNJ_move - profile.base) / profile.scale - 2.0,
    )
    scores = scores.astype(np.float64)
    scores[overflowed] = float("inf")
    return FilterScores(scores=scores, overflowed=overflowed)
