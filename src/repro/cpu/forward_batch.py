"""Batched Forward: score many sequences in lockstep rows.

The Forward stage only sees the ~0.1% of sequences that survive both
filters, but for hit-rich searches (or the Forward-everything mode used
in sensitivity studies) a vectorized engine matters.  Same recurrence as
:func:`repro.cpu.generic.generic_forward_score`, batched across
sequences exactly like the filter engines; equality with the per-sequence
engine is a tested invariant.
"""

from __future__ import annotations

import numpy as np

from ..hmm.profile import SearchProfile
from ..scoring.guardrails import GuardrailCounters
from ..sequence.database import PaddedBatch, SequenceDatabase
from .generic import GenericProfile, _forward_segments

__all__ = ["forward_score_batch"]

_NEG = float("-inf")


def _lse_d_chain_batch(start: np.ndarray, tdd: np.ndarray) -> np.ndarray:
    """Log-sum-exp Delete chain vectorized over a batch, (n, M)."""
    n, M = start.shape
    inject = np.concatenate(
        [np.full((n, 1), _NEG), start[:, :-1]], axis=1
    )
    D = np.full((n, M), _NEG)
    for lo, hi in _forward_segments(M, tdd):
        seg = hi - lo
        if seg == 1:
            D[:, lo] = inject[:, lo]
            continue
        c = np.concatenate(([0.0], np.cumsum(tdd[lo : hi - 1])))
        g = inject[:, lo:hi] - c
        with np.errstate(invalid="ignore"):
            u = np.logaddexp.accumulate(g, axis=1)
        D[:, lo:hi] = c + u
    return D


def forward_score_batch(
    profile: SearchProfile | GenericProfile,
    batch: PaddedBatch | SequenceDatabase,
    guard: GuardrailCounters | None = None,
) -> np.ndarray:
    """Forward log-odds scores (nats) for a whole database.

    ``guard.nonfinite`` counts sequences whose final score is NaN or
    infinite - floating-point Forward has no saturating floor, so a
    non-finite score here means numerical trouble, not a valid result.
    """
    gp = (
        GenericProfile.from_profile(profile)
        if isinstance(profile, SearchProfile)
        else profile
    )
    if isinstance(batch, SequenceDatabase):
        batch = batch.padded_batch()
    n, M = batch.n_seqs, gp.M
    Mp = np.full((n, M), _NEG)
    Ip = Mp.copy()
    Dp = Mp.copy()
    xN = np.zeros(n)
    xJ = np.full(n, _NEG)
    xC = np.full(n, _NEG)
    xB = xN + gp.N_move
    final_xC = np.full(n, _NEG)

    def shift(a):
        out = np.empty_like(a)
        out[:, 0] = _NEG
        out[:, 1:] = a[:, :-1]
        return out

    max_len = int(batch.lengths.max())
    with np.errstate(invalid="ignore"):
        for i in range(max_len):
            active = batch.lengths > i
            if not active.any():
                break
            codes = np.where(active, batch.codes[:, i], 0).astype(np.intp)
            rs = gp.msc[codes]  # (n, M)
            sv = np.logaddexp(xB[:, None] + gp.tbm, shift(Mp) + gp.enter_mm)
            sv = np.logaddexp(sv, shift(Ip) + gp.enter_im)
            sv = np.logaddexp(sv, shift(Dp) + gp.enter_dm)
            Mv = sv + rs
            Iv = np.logaddexp(Mp + gp.tmi, Ip + gp.tii)
            Dv = _lse_d_chain_batch(Mv + gp.tmd, gp.tdd)
            # xE: stable log-sum over the row
            row_max = np.max(Mv, axis=1)
            safe = np.where(np.isfinite(row_max), row_max, 0.0)
            sums = np.exp(
                np.where(np.isfinite(Mv), Mv - safe[:, None], _NEG)
            ).sum(axis=1)
            xE = np.where(
                np.isfinite(row_max), safe + np.log(np.maximum(sums, 1e-300)),
                _NEG,
            )
            xN_new = xN + gp.N_loop
            xJ_new = np.logaddexp(xJ + gp.J_loop, xE + gp.E_loop)
            xC_new = np.logaddexp(xC + gp.C_loop, xE + gp.E_move)
            xB_new = np.logaddexp(xN_new + gp.N_move, xJ_new + gp.J_move)
            # only active sequences advance their state
            upd = active
            Mp[upd], Ip[upd], Dp[upd] = Mv[upd], Iv[upd], Dv[upd]
            xN = np.where(upd, xN_new, xN)
            xJ = np.where(upd, xJ_new, xJ)
            xC = np.where(upd, xC_new, xC)
            xB = np.where(upd, xB_new, xB)
            ending = active & (batch.lengths == i + 1)
            final_xC[ending] = xC[ending]
    nats = final_xC + gp.C_move
    if guard is not None:
        guard.nonfinite += int(np.count_nonzero(~np.isfinite(nats)))
    return nats
