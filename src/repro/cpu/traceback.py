"""Viterbi traceback: optimal alignments, not just scores.

The filters only need scores, but reported hits need the alignment
itself.  This module runs the full-precision Viterbi DP while retaining
the matrices, then walks backwards through the winning transitions to
recover the optimal state path - including the flanking N/J/C machinery,
so multihit paths decompose into per-domain alignments.

Invariants enforced by the tests: re-scoring the recovered path
reproduces the Viterbi score; every residue is consumed by exactly one
emitting state; all transitions on the path are legal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..alphabet import AMINO
from ..errors import KernelError
from ..hmm.profile import SearchProfile
from .generic import GenericProfile, _max_d_chain, _shift

__all__ = ["PathStep", "DomainAlignment", "ViterbiAlignment", "viterbi_traceback"]

_NEG = float("-inf")


@dataclass(frozen=True)
class PathStep:
    """One state visit: ``state`` in N/B/M/I/D/E/J/C, 0-based model node
    (-1 for non-core states), and the 0-based residue consumed (-1 when
    the visit emits nothing)."""

    state: str
    node: int
    residue: int


@dataclass(frozen=True)
class DomainAlignment:
    """One aligned domain (a B...E segment of the path)."""

    seq_start: int   # first aligned residue (0-based, inclusive)
    seq_end: int     # past-the-end residue
    model_start: int  # first aligned node (0-based, inclusive)
    model_end: int    # past-the-end node
    steps: tuple[PathStep, ...]

    def render(self, hmm_consensus: str, codes: np.ndarray) -> str:
        """Three-line text rendering: model, match marks, sequence."""
        model_line = []
        marks = []
        seq_line = []
        for step in self.steps:
            if step.state == "M":
                m = hmm_consensus[step.node]
                s = AMINO.symbols[int(codes[step.residue])]
                model_line.append(m)
                seq_line.append(s)
                marks.append("|" if m == s.upper() else "+")
            elif step.state == "I":
                model_line.append(".")
                seq_line.append(AMINO.symbols[int(codes[step.residue])].lower())
                marks.append(" ")
            elif step.state == "D":
                model_line.append(hmm_consensus[step.node])
                seq_line.append("-")
                marks.append(" ")
        return "\n".join(
            ("".join(model_line), "".join(marks), "".join(seq_line))
        )


@dataclass(frozen=True)
class ViterbiAlignment:
    """The optimal path of one sequence against one profile."""

    score: float
    path: tuple[PathStep, ...]
    domains: tuple[DomainAlignment, ...]

    def aligned_residues(self) -> int:
        return sum(1 for s in self.path if s.state in "MI")


def _forward_matrices(gp: GenericProfile, codes: np.ndarray):
    L, M = codes.size, gp.M
    fM = np.full((L, M), _NEG)
    fI = np.full((L, M), _NEG)
    fD = np.full((L, M), _NEG)
    xN = np.full(L + 1, _NEG)
    xB = np.full(L + 1, _NEG)
    xE = np.full(L + 1, _NEG)
    xJ = np.full(L + 1, _NEG)
    xC = np.full(L + 1, _NEG)
    xN[0] = 0.0
    xB[0] = gp.N_move
    Mp = np.full(M, _NEG)
    Ip = Mp.copy()
    Dp = Mp.copy()
    with np.errstate(invalid="ignore"):
        for i in range(L):
            rs = gp.msc[int(codes[i])]
            sv = np.maximum(xB[i] + gp.tbm, _shift(Mp) + gp.enter_mm)
            sv = np.maximum(sv, _shift(Ip) + gp.enter_im)
            sv = np.maximum(sv, _shift(Dp) + gp.enter_dm)
            fM[i] = sv + rs
            fI[i] = np.maximum(Mp + gp.tmi, Ip + gp.tii)
            fD[i] = _max_d_chain(fM[i] + gp.tmd, gp.tdd)
            r = i + 1
            xE[r] = float(fM[i].max())
            xN[r] = xN[r - 1] + gp.N_loop
            xJ[r] = max(xJ[r - 1] + gp.J_loop, xE[r] + gp.E_loop)
            xC[r] = max(xC[r - 1] + gp.C_loop, xE[r] + gp.E_move)
            xB[r] = max(xN[r] + gp.N_move, xJ[r] + gp.J_move)
            Mp, Ip, Dp = fM[i], fI[i], fD[i]
    return fM, fI, fD, xN, xB, xE, xJ, xC


def _split_domains(path: list[PathStep]) -> tuple[DomainAlignment, ...]:
    domains = []
    current: list[PathStep] | None = None
    for step in path:
        if step.state == "B":
            current = []
        elif step.state == "E" and current is not None:
            core = [s for s in current if s.state in "MID"]
            if core:
                residues = [s.residue for s in core if s.residue >= 0]
                nodes = [s.node for s in core]
                domains.append(
                    DomainAlignment(
                        seq_start=min(residues),
                        seq_end=max(residues) + 1,
                        model_start=min(nodes),
                        model_end=max(nodes) + 1,
                        steps=tuple(core),
                    )
                )
            current = None
        elif current is not None:
            current.append(step)
    return tuple(domains)


def viterbi_traceback(
    profile: SearchProfile | GenericProfile, codes: np.ndarray
) -> ViterbiAlignment:
    """Optimal alignment of a digital sequence against the profile."""
    gp = (
        GenericProfile.from_profile(profile)
        if isinstance(profile, SearchProfile)
        else profile
    )
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise KernelError("codes must be a non-empty 1-D array")
    L, M = codes.size, gp.M
    fM, fI, fD, xN, xB, xE, xJ, xC = _forward_matrices(gp, codes)
    score = float(xC[L] + gp.C_move)
    if not np.isfinite(score):
        raise KernelError("sequence has no finite alignment to the profile")

    rev: list[PathStep] = []
    state, r, j = "C", L, -1  # r = residues consumed so far

    def best(options):
        """Pick the transition whose recomputed value is maximal."""
        vals = [v for v, _ in options]
        return options[int(np.argmax(vals))][1]

    guard = 0
    while not (state == "N" and r == 0):
        guard += 1
        if guard > 20 * (L + 1) * 3 + 10 * (M + L):
            raise KernelError("traceback failed to terminate")  # pragma: no cover
        if state == "C":
            choice = best(
                [
                    (xC[r - 1] + gp.C_loop if r > 0 else _NEG, "C_loop"),
                    (xE[r] + gp.E_move, "E"),
                ]
            )
            if choice == "C_loop":
                # this C visit was reached by looping: it emitted r-1
                rev.append(PathStep("C", -1, r - 1))
                r -= 1
            else:
                rev.append(PathStep("C", -1, -1))  # first C, from E
                state = "E"
        elif state == "E":
            rev.append(PathStep("E", -1, -1))
            j = int(np.argmax(fM[r - 1]))
            state = "M"
        elif state == "M":
            i = r - 1
            rev.append(PathStep("M", j, i))
            rs = gp.msc[int(codes[i])][j]
            entry = xB[r - 1] + gp.tbm + rs
            if j > 0 and i > 0:
                options = [
                    (entry, "B"),
                    (fM[i - 1][j - 1] + gp.enter_mm[j] + rs, "Mprev"),
                    (fI[i - 1][j - 1] + gp.enter_im[j] + rs, "Iprev"),
                    (fD[i - 1][j - 1] + gp.enter_dm[j] + rs, "Dprev"),
                ]
            else:
                options = [(entry, "B")]
            choice = best(options)
            if choice == "B":
                state, r = "B", r - 1
            else:
                state = {"Mprev": "M", "Iprev": "I", "Dprev": "D"}[choice]
                j -= 1
                r -= 1
        elif state == "I":
            i = r - 1
            rev.append(PathStep("I", j, i))
            state = best(
                [
                    (fM[i - 1][j] + gp.tmi[j] if i > 0 else _NEG, "M"),
                    (fI[i - 1][j] + gp.tii[j] if i > 0 else _NEG, "I"),
                ]
            )
            r -= 1
        elif state == "D":
            i = r - 1
            rev.append(PathStep("D", j, -1))
            state = best(
                [
                    (fM[i][j - 1] + gp.tmd[j - 1] if j > 0 else _NEG, "M"),
                    (fD[i][j - 1] + gp.tdd[j - 1] if j > 0 else _NEG, "D"),
                ]
            )
            j -= 1
        elif state == "B":
            rev.append(PathStep("B", -1, -1))
            state = best(
                [
                    (xN[r] + gp.N_move, "N"),
                    (xJ[r] + gp.J_move, "J"),
                ]
            )
        elif state == "J":
            choice = best(
                [
                    (xJ[r - 1] + gp.J_loop if r > 0 else _NEG, "J_loop"),
                    (xE[r] + gp.E_loop, "E"),
                ]
            )
            if choice == "J_loop":
                rev.append(PathStep("J", -1, r - 1))
                r -= 1
            else:
                rev.append(PathStep("J", -1, -1))  # first J, from E
                state = "E"
        elif state == "N":
            # every N visit at r > 0 arrived by looping and emitted r-1
            rev.append(PathStep("N", -1, r - 1))
            r -= 1
        else:  # pragma: no cover - defensive
            raise KernelError(f"unknown traceback state {state!r}")
    rev.append(PathStep("N", -1, -1))  # the initial, non-emitting N

    path = tuple(reversed(rev))
    return ViterbiAlignment(
        score=score, path=path, domains=_split_domains(list(path))
    )
