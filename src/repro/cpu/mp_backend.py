"""Process-parallel stage scoring: the ``mp`` engine backend.

On hosts without the simulated accelerator's vector width - or to
overlap scoring with the service plane's Python-side bookkeeping - the
``mp`` engine shards a database across a ``ProcessPoolExecutor`` of
**forked** worker processes, each running a configurable *inner* engine
(``gpu_warp_batched`` by default) on its contiguous shard.

Design points:

* **Shared-memory score arrays.**  The per-sequence score and overflow
  arrays live in anonymous shared mappings
  (:func:`multiprocessing.sharedctypes.RawArray`) created *before* the
  pool forks, so workers write results in place and nothing is
  serialized on the way back except the small counter tally.  Anonymous
  mappings need no names, no resource tracker and no cleanup.
* **Fork inheritance, not pickling.**  The work description (profile,
  padded batch, inner scorer) is bound to a module global before the
  pool starts; forked children inherit it copy-on-write, so the
  sequence data crosses into workers without pickling.
* **Fork-safe seeding.**  Stage scoring is deterministic and touches no
  RNG (enforced by repro-lint R001 on this directory), so forked
  workers cannot correlate random streams.  Anything stochastic a
  worker ever adds must derive its own private generator from
  :func:`chunk_seed` - a content-derived seed, unique per shard and
  independent of worker identity or fork order - never from inherited
  global state.
* **Composition-independent determinism.**  Every sequence's score is a
  pure function of (profile, sequence) in every inner engine, so the
  concatenated result is bit-identical for any worker count; the test
  suite pins workers = 1/2/4 to identical hits.

``workers=1`` scores inline in this process - no pool, no fork - which
is also the fallback when the platform lacks the ``fork`` start method
(see the engine's capability probe).
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from ctypes import c_double, c_uint8
from multiprocessing import get_context
from multiprocessing.sharedctypes import RawArray
from typing import Callable

import numpy as np

from ..errors import KernelError
from ..gpu.counters import KernelCounters
from ..sequence.database import PaddedBatch, SequenceDatabase
from .results import FilterScores

__all__ = ["mp_score_stage", "chunk_seed"]


def chunk_seed(stage: str, start: int, stop: int, payload: bytes = b"") -> int:
    """Deterministic per-shard seed for worker-private generators.

    Derived from the shard's identity (stage + index span + optional
    content digest), never from process ids, fork order or inherited
    generator state - the fork-safe seeding contract of the ``mp``
    engine.  Scoring itself is RNG-free; this exists so stochastic
    instrumentation added inside a worker has a correct seed to hand.
    """
    h = hashlib.sha256(f"{stage}:{start}:{stop}:".encode() + payload)
    return int.from_bytes(h.digest()[:8], "big")


def _inner_scorer(stage: str, inner: str) -> Callable[..., FilterScores]:
    """The plain scoring callable a worker runs on its shard."""
    if inner == "cpu_sse":
        from .msv_reference import msv_score_batch
        from .viterbi_reference import viterbi_score_batch

        ref = msv_score_batch if stage == "msv" else viterbi_score_batch

        def run(profile, shard, counters):
            counters.sequences += shard.n_seqs
            counters.rows += int(shard.lengths.sum())
            return ref(profile, shard)

        return run
    if inner == "gpu_warp":
        from ..kernels.msv_warp import msv_warp_kernel
        from ..kernels.viterbi_warp import viterbi_warp_kernel

        kernel = msv_warp_kernel if stage == "msv" else viterbi_warp_kernel
    elif inner == "gpu_warp_batched":
        from ..kernels.batched import msv_batched_kernel, viterbi_batched_kernel

        kernel = msv_batched_kernel if stage == "msv" else viterbi_batched_kernel
    else:
        raise KernelError(
            f"mp backend cannot run inner engine {inner!r} "
            "(inner engines: cpu_sse, gpu_warp, gpu_warp_batched)"
        )

    def run(profile, shard, counters):
        return kernel(profile, shard, counters=counters)

    return run


# Work description for forked children, bound immediately before the
# pool starts: (scorer, profile, batch, score_buf, overflow_buf).
_TASK: tuple | None = None


def _score_span(span: tuple[int, int]) -> dict[str, int]:
    """Worker body: score one contiguous shard into the shared arrays."""
    assert _TASK is not None, "mp worker forked without a bound task"
    run, profile, batch, score_buf, overflow_buf = _TASK
    lo, hi = span
    shard = PaddedBatch(
        codes=batch.codes[lo:hi],
        lengths=batch.lengths[lo:hi],
        pad_code=batch.pad_code,
    )
    counters = KernelCounters()
    result = run(profile, shard, counters)
    scores = np.frombuffer(score_buf, dtype=np.float64)
    overflowed = np.frombuffer(overflow_buf, dtype=np.uint8)
    scores[lo:hi] = result.scores
    overflowed[lo:hi] = result.overflowed
    return counters.as_dict()


def mp_score_stage(
    stage: str,
    profile,
    database: SequenceDatabase | PaddedBatch,
    *,
    workers: int,
    inner: str,
    counters: KernelCounters | None = None,
) -> FilterScores:
    """Score one filter stage with a pool of forked worker processes.

    Returns the same :class:`~repro.cpu.results.FilterScores` the inner
    engine would produce on the whole database, bit-identical for every
    ``workers`` value.  Worker counter tallies are merged into
    ``counters``.
    """
    if workers < 1:
        raise KernelError("mp workers must be >= 1")
    batch = (
        database.padded_batch()
        if isinstance(database, SequenceDatabase)
        else database
    )
    run = _inner_scorer(stage, inner)
    n = batch.n_seqs

    if workers == 1 or n == 1:
        c = counters if counters is not None else KernelCounters()
        return run(profile, batch, c)

    n_chunks = min(workers, n)
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    spans = [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]

    score_buf = RawArray(c_double, n)
    overflow_buf = RawArray(c_uint8, n)
    global _TASK
    _TASK = (run, profile, batch, score_buf, overflow_buf)
    try:
        with ProcessPoolExecutor(
            max_workers=n_chunks, mp_context=get_context("fork")
        ) as pool:
            tallies = list(pool.map(_score_span, spans))
    finally:
        _TASK = None

    if counters is not None:
        for tally in tallies:
            for name, value in tally.items():
                setattr(counters, name, getattr(counters, name) + value)
    scores = np.frombuffer(score_buf, dtype=np.float64).copy()
    overflowed = np.frombuffer(overflow_buf, dtype=np.uint8).astype(bool)
    return FilterScores(scores=scores, overflowed=overflowed)
