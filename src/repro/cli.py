"""``repro-hmmsearch``: a small hmmsearch-style command-line front end.

Examples
--------
Build a model from a Stockholm seed alignment, then search::

    repro-hmmsearch build seed.sto query.hmm
    repro-hmmsearch search query.hmm targets.fasta

Align sequences back to the model (hmmalign)::

    repro-hmmsearch align query.hmm members.fasta aligned.sto

Scan one sequence against a directory of model files (hmmscan)::

    repro-hmmsearch scan models_dir protein.fasta

Generate a demo model + database and search them on the simulated GPU::

    repro-hmmsearch demo --model-size 200 --n-seqs 500 --engine gpu

Run a whole manifest of jobs through the batch search service on a
mixed simulated device pool and print the service metrics report::

    repro-hmmsearch batch jobs.json --devices k40=2,gtx580=2

Checkpoint a batch run to a crash-consistent WAL v2 journal (and later
resume it, replaying only unfinished work units), or soak it in
deterministic injected faults::

    repro-hmmsearch batch jobs.json --journal run.wal
    repro-hmmsearch batch jobs.json --journal run.wal --resume
    repro-hmmsearch batch jobs.json --fault-seed 42 --fault-count 4

Library scans journal the same way, and a pressed store can be
verified (and repaired) after a crash::

    repro-hmmsearch scan store targets.fasta --journal scan.wal --resume
    repro-hmmsearch fsck store --repair

Print the occupancy table behind Figure 9::

    repro-hmmsearch occupancy --stage msv
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from . import engines
from .errors import (
    DeadlineExceeded,
    DivergenceError,
    JournalCorruptError,
    OverloadError,
    QuarantineError,
    UnknownEngineError,
)
from .gpu.device import FERMI_GTX580, KEPLER_K40
from .hardening import RecordQuarantine, IngestPolicy, STRICT, SALVAGE
from .hmm.builder import build_hmm_from_msa
from .hmm.hmmfile import load_hmm, save_hmm
from .hmm.info import mean_relative_entropy
from .hmm.sampler import PAPER_MODEL_SIZES, sample_hmm
from .kernels.memconfig import MemoryConfig, Stage, stage_occupancy
from .obs.exporters import write_bench_json
from .obs.span import Tracer
from .options import SearchOptions, field_doc
from .pipeline.pipeline import HmmsearchPipeline
from .sequence.fasta import read_fasta
from .sequence.stockholm import (
    StockholmAlignment,
    read_stockholm,
    write_stockholm,
)
from .sequence.synthetic import envnr_like, swissprot_like

__all__ = ["main"]


def _engine(name: str):
    """argparse type: resolve any registered engine name/alias/mapping.

    Using a ``type=`` converter instead of ``choices=`` keeps the CLI
    open like the registry: new engines (and ``stage=name,...``
    per-stage mappings) are accepted the moment they register, and an
    unknown name fails with the registry's own message.
    """
    try:
        return engines.resolve(name)
    except UnknownEngineError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _engine_help(doc_field: str = "engine") -> str:
    lines = [field_doc(doc_field), "registered engines:"]
    for name in engines.list_engines():
        spec = engines.get(name)
        mark = "" if spec.probe() else " [unavailable on this host]"
        lines.append(f"{name} - {spec.description}{mark}")
    return "; ".join(lines)


def _policy(args: argparse.Namespace) -> IngestPolicy:
    return SALVAGE if args.salvage else STRICT


def _add_search_flags(p: argparse.ArgumentParser) -> None:
    """The uniform search-behaviour flags shared by ``search`` and
    ``batch``; help text comes from the SearchOptions field docs, so
    the flags and the API cannot drift apart."""
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict", action="store_false", dest="salvage", default=False,
        help=f"{field_doc('policy')} (this selects strict, the default)",
    )
    mode.add_argument(
        "--salvage", action="store_true", dest="salvage",
        help=f"{field_doc('policy')} (this selects salvage)",
    )
    p.add_argument(
        "--selfcheck", type=int, default=0, metavar="N",
        help=field_doc("selfcheck"),
    )
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help=f"{field_doc('tracer')}; the span tree is dumped to FILE "
             "as JSON-lines",
    )
    p.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="roll the trace's stage spans up into a perf-trajectory "
             "JSON (wall times, residues/s, survival) written to FILE",
    )
    p.add_argument(
        "--sanitize", action="store_true", default=False,
        help=field_doc("sanitize"),
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help=field_doc("deadline_ms"),
    )


def _tracer(args: argparse.Namespace) -> Tracer | None:
    """A tracer when any observability output was requested."""
    if args.trace or args.bench_out:
        return Tracer()
    return None


def _write_observability(
    args: argparse.Namespace, tracer: Tracer | None, workload: dict
) -> None:
    """Dump the requested --trace / --bench-out artifacts."""
    if tracer is None:
        return
    if args.trace:
        path = tracer.write_jsonl(args.trace)
        print(f"trace: {len(tracer)} spans -> {path}")
    if args.bench_out:
        path = write_bench_json(args.bench_out, tracer.roots, workload)
        print(f"bench: stage roll-up -> {path}")


def _cmd_search(args: argparse.Namespace) -> int:
    policy = _policy(args)
    quarantine = RecordQuarantine()
    hmm = load_hmm(args.model, policy=policy, quarantine=quarantine)
    if hmm is None:
        print(f"model {args.model} was quarantined:", file=sys.stderr)
        for line in quarantine.render_lines():
            print(line, file=sys.stderr)
        return 2
    try:
        db = read_fasta(args.database, policy=policy, quarantine=quarantine)
    except QuarantineError as exc:
        print(f"database {args.database} unusable: {exc}", file=sys.stderr)
        for line in quarantine.render_lines():
            print(line, file=sys.stderr)
        return 2
    pipe = HmmsearchPipeline(hmm, L=args.length)
    tracer = _tracer(args)
    options = SearchOptions(
        engine=args.engine,
        selfcheck=args.selfcheck,
        policy=policy,
        quarantine=quarantine,
        tracer=tracer,
        sanitize=args.sanitize,
        deadline_ms=args.deadline_ms,
    )
    try:
        results = pipe.search(db, options)
    except DivergenceError as exc:
        print(f"selfcheck FAILED: {exc}", file=sys.stderr)
        return 3
    except DeadlineExceeded as exc:
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return 5
    print(results.summary())
    _write_observability(
        args, tracer,
        {"command": "search", "model": str(args.model),
         "database": str(args.database), "targets": len(db)},
    )
    if quarantine:
        print()
        for line in quarantine.render_lines():
            print(line)
    if results.oracle is not None and results.oracle.divergences:
        return 3
    return 2 if quarantine else 0


def _cmd_demo(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    hmm = sample_hmm(args.model_size, rng)
    maker = swissprot_like if args.database == "swissprot" else envnr_like
    db = maker(args.n_seqs, rng, hmm=hmm)
    print(f"model: {hmm}   database: {db}")
    pipe = HmmsearchPipeline(hmm, L=int(db.mean_length))
    results = pipe.search(db, SearchOptions(engine=args.engine))
    print(results.summary())
    if results.counters:
        for stage_name, c in results.counters.items():
            print(f"counters[{stage_name}]: rows={c.rows} strips={c.strips} "
                  f"shuffles={c.shuffles} syncthreads={c.syncthreads}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    seed = read_stockholm(args.alignment)
    name = args.name or seed.annotations.get("ID") or Path(args.alignment).stem
    hmm = build_hmm_from_msa(seed.rows, name=name, symfrac=args.symfrac)
    save_hmm(args.output, hmm)
    print(
        f"built {hmm.name}: M={hmm.M}, "
        f"{mean_relative_entropy(hmm):.2f} bits/position -> {args.output}"
    )
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    from .cpu.hmmalign import align_to_profile
    from .hmm.profile import SearchProfile

    hmm = load_hmm(args.model)
    db = read_fasta(args.sequences)
    profile = SearchProfile(hmm, L=max(1, int(db.mean_length)))
    rows = align_to_profile(profile, list(db))
    write_stockholm(
        args.output,
        StockholmAlignment(
            names=[s.name for s in db],
            rows=rows,
            annotations={"ID": hmm.name},
        ),
    )
    print(f"aligned {len(db)} sequences to {hmm.name} -> {args.output}")
    return 0


def _load_catalog(
    args: argparse.Namespace,
    source: Path,
    policy: IngestPolicy,
    quarantine: RecordQuarantine,
):
    """A catalog from a pressed store, a directory of ``.hmm`` files, or
    one model file; None (after printing why) when nothing is usable."""
    from .scan import LibraryCatalog, PressSettings

    if (source / "index.json").is_file():
        return LibraryCatalog.load(source, policy=policy, quarantine=quarantine)
    model_files = (
        sorted(source.glob("*.hmm")) if source.is_dir() else [source]
    )
    hmms = []
    for path in model_files:
        if not path.is_file():
            print(f"no such model file: {path}", file=sys.stderr)
            return None
        hmms.append(load_hmm(path, policy=policy, quarantine=quarantine))
    hmms = [h for h in hmms if h is not None]  # salvage-quarantined files
    if not hmms:
        print(f"no usable .hmm files in {source}", file=sys.stderr)
        return None
    return LibraryCatalog.press(
        hmms,
        settings=PressSettings(
            L=args.length,
            calibration_filter_sample=args.calibration_sample,
            calibration_forward_sample=max(25, args.calibration_sample // 4),
        ),
        name=source.stem or source.name,
        policy=policy,
        quarantine=quarantine,
    )


def _cmd_press(args: argparse.Namespace) -> int:
    from .errors import CatalogError, PipelineError

    policy = _policy(args)
    quarantine = RecordQuarantine()
    try:
        catalog = _load_catalog(args, Path(args.models), policy, quarantine)
    except (CatalogError, PipelineError) as exc:
        print(f"press failed: {exc}", file=sys.stderr)
        return 1
    if catalog is None:
        return 1
    # persist with reuse: unchanged entries in an existing pressing at
    # the store keep their calibrations (entry_hits in the stats below)
    from .scan import LibraryCatalog

    pressed = LibraryCatalog.press(
        [e.hmm for e in catalog.entries()],
        store=args.store,
        settings=catalog.settings,
        name=catalog.name,
        policy=policy,
        quarantine=quarantine,
    )
    s = pressed.stats()
    print(
        f"pressed {s['entries']} model(s) -> {args.store}  "
        f"(calibrated {s['calibrations']}, reused {s['entry_hits']}, "
        f"invalidated {s['invalidated']})"
    )
    if quarantine:
        for line in quarantine.render_lines():
            print(line, file=sys.stderr)
        return 2
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .errors import CatalogError, PipelineError
    from .scan import ScanOptions, ScanService

    policy = _policy(args)
    quarantine = RecordQuarantine()
    source = Path(args.library if args.library else args.models)
    try:
        catalog = _load_catalog(args, source, policy, quarantine)
    except (CatalogError, PipelineError) as exc:
        print(f"cannot open model library {source}: {exc}", file=sys.stderr)
        return 1
    if catalog is None:
        return 1
    try:
        db = read_fasta(args.sequence, policy=policy, quarantine=quarantine)
    except QuarantineError as exc:
        print(f"database {args.sequence} unusable: {exc}", file=sys.stderr)
        for line in quarantine.render_lines():
            print(line, file=sys.stderr)
        return 2
    tracer = _tracer(args)
    try:
        journal = _open_journal(args)
    except JournalCorruptError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 6
    service = ScanService(
        catalog,
        pool=_parse_pool(args.devices),
        journal=journal,
        options=ScanOptions(
            search=SearchOptions(
                engine=args.engine,
                selfcheck=args.selfcheck,
                policy=policy,
                quarantine=quarantine,
                tracer=tracer,
                sanitize=args.sanitize,
            ),
            top_hits=args.top_hits,
            deadline_ms=args.deadline_ms,
        ),
        # a real monotonic timebase so --deadline-ms bounds wall time;
        # tests and library callers keep the virtual default
        clock=time.monotonic,
    )
    try:
        results = service.scan(db)
    except DivergenceError as exc:
        print(f"selfcheck FAILED: {exc}", file=sys.stderr)
        return 3
    except DeadlineExceeded as exc:
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return 5
    print(results.summary())
    if journal is not None:
        print()
        _journal_report(
            journal, results.resumed_groups, results.recomputed_groups
        )
    _write_observability(
        args, tracer,
        {"command": "scan", "library": str(source),
         "models": len(catalog), "sequences": len(db)},
    )
    if quarantine:
        print()
        for line in quarantine.render_lines():
            print(line)
    return 2 if quarantine else 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .perf.report import full_report

    sizes = tuple(args.sizes) if args.sizes else PAPER_MODEL_SIZES
    report = full_report(
        sizes=sizes,
        calibration_filter_sample=args.calibration_sample,
        calibration_forward_sample=max(25, args.calibration_sample // 4),
    )
    print(report.render())
    return 0


def _parse_pool(spec: str):
    """Parse ``k40=2,gtx580=2`` into a DevicePool."""
    from .service import DevicePool

    specs = []
    for part in spec.split(","):
        name, _, count = part.partition("=")
        device = {"k40": KEPLER_K40, "gtx580": FERMI_GTX580}.get(
            name.strip().lower()
        )
        if device is None:
            raise SystemExit(
                f"unknown device {name!r} in --devices (use k40/gtx580)"
            )
        specs.extend([device] * int(count or 1))
    pool = DevicePool(specs, name=spec)
    return pool


def _open_journal(args: argparse.Namespace):
    """A WAL v2 journal from --journal/--resume flags, or None.

    Strict/salvage follows the run's ingestion policy: salvage truncates
    a torn journal tail and recomputes stale entries, strict raises
    :class:`JournalCorruptError` (exit 6) so corruption never resumes
    silently.
    """
    from .service import DurableRunJournal

    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal <path>")
    if not args.journal:
        return None
    return DurableRunJournal(
        args.journal, resume=args.resume, policy=_policy(args)
    )


def _journal_report(journal, resumed_units: int, recomputed_units: int) -> None:
    counts = journal.unit_counts()
    print(
        f"journal {journal.path} (generation {journal.generation}): "
        f"{counts['jobs']} job(s), {counts['shards']} shard(s), "
        f"{counts['groups']} scan group(s) checkpointed"
        + (
            f", {journal.salvaged_bytes} torn tail byte(s) salvaged"
            if journal.salvaged_bytes
            else ""
        )
    )
    print(
        f"work units: {resumed_units} resumed from journal "
        f"({recomputed_units} recomputed)"
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    from .service import (
        AdmissionLimits,
        BatchSearchService,
        FaultPlan,
        submit_manifest,
    )

    pool = _parse_pool(args.devices)
    plan = None
    if args.fault_seed is not None:
        plan = FaultPlan.seeded(
            args.fault_seed, n_faults=args.fault_count, n_devices=pool.size
        )
        print(plan.describe())
    try:
        journal = _open_journal(args)
    except JournalCorruptError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 6
    policy = _policy(args)
    tracer = _tracer(args)
    limits = None
    if args.max_pending is not None or args.max_backlog_cost is not None:
        limits = AdmissionLimits(
            max_pending=args.max_pending,
            max_backlog_cost=args.max_backlog_cost,
        )
    service = BatchSearchService(
        pool=pool,
        cache_size=args.cache_size,
        fault_plan=plan,
        journal=journal,
        limits=limits,
        options=SearchOptions(
            selfcheck=args.selfcheck, policy=policy, tracer=tracer,
            sanitize=args.sanitize, deadline_ms=args.deadline_ms,
        ),
    )
    overload: OverloadError | None = None
    jobs: list = []
    try:
        jobs = submit_manifest(
            service,
            args.manifest,
            default_length=args.length,
            calibration_filter_sample=args.calibration_sample,
            calibration_forward_sample=max(25, args.calibration_sample // 4),
            policy=policy,
        )
        print(f"submitted {len(jobs)} jobs from {args.manifest}")
    except OverloadError as exc:
        # admission control refused a submission; anything admitted
        # before the watermark still runs to completion below
        overload = exc
        print(f"admission control {exc.kind} a job: {exc}", file=sys.stderr)
        print(
            f"retry after ~{exc.retry_after:.3f}s of modelled backlog",
            file=sys.stderr,
        )
    try:
        done = service.run()
    except JournalCorruptError as exc:
        # strict policy: a stale checkpoint entry must not silently
        # resume the wrong results
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 6
    if not jobs:
        jobs = done
    print()
    print(service.metrics.render())
    _write_observability(
        args, tracer,
        {"command": "batch", "manifest": str(args.manifest),
         "jobs": len(jobs), "devices": args.devices},
    )
    if journal is not None:
        print()
        print(
            f"journal {journal.path}: {len(journal)} job(s) checkpointed "
            f"({service.metrics.resumed_jobs} resumed this run)"
        )
        _journal_report(
            journal,
            service.metrics.resumed_units,
            service.metrics.recomputed_units,
        )
    if args.show_hits:
        print()
        for job in jobs:
            if job.results is not None and job.results.hits:
                print(job.results.summary())
    # exit codes, worst first: 6 = strict journal corruption (handled
    # above), 3 = engines diverged from the scalar reference, 5 = job
    # deadlines expired, 4 = admission control refused submissions,
    # 1 = jobs failed, 2 = completed but records were quarantined,
    # 0 = clean
    if service.metrics.total_divergences:
        return 3
    if service.metrics.deadline_failures:
        return 5
    if overload is not None:
        return 4
    if service.metrics.jobs_failed:
        return 1
    if service.quarantine:
        return 2
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from .scan import LibraryCatalog

    report = LibraryCatalog.fsck(args.store, repair=args.repair)
    for line in report.render_lines():
        print(line)
    if args.json:
        import json as _json

        Path(args.json).write_text(
            _json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"fsck report -> {args.json}")
    # 0 = consistent (or fully repaired/quarantined), 1 = problems remain
    return 0 if report.ok else 1


def _cmd_occupancy(args: argparse.Namespace) -> int:
    stage = Stage.MSV if args.stage == "msv" else Stage.P7VITERBI
    device = KEPLER_K40 if args.device == "k40" else FERMI_GTX580
    print(f"{stage.value} occupancy on {device.name} (% of max warp slots)")
    header = "config   " + " ".join(f"{m:>6d}" for m in PAPER_MODEL_SIZES)
    print(header)
    for config in MemoryConfig:
        cells = []
        for m in PAPER_MODEL_SIZES:
            occ = stage_occupancy(stage, m, config, device)
            cells.append("    --" if occ is None else f"{100 * occ.occupancy:>6.1f}")
        print(f"{config.value:8s} " + " ".join(cells))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hmmsearch",
        description="HMMER3 hmmsearch reproduction with simulated GPU kernels",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="search a FASTA database with a model file")
    p.add_argument("model", help="model file (repro flat format)")
    p.add_argument("database", help="FASTA file of target sequences")
    p.add_argument(
        "--engine", type=_engine, default="cpu",
        help=_engine_help(), metavar="ENGINE",
    )
    p.add_argument("--length", type=int, default=400, help="length-model L")
    _add_search_flags(p)
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser("demo", help="generate a synthetic search and run it")
    p.add_argument("--model-size", type=int, default=200)
    p.add_argument("--n-seqs", type=int, default=400)
    p.add_argument("--database", choices=("swissprot", "envnr"), default="envnr")
    p.add_argument("--engine", type=_engine, default="gpu",
                   help=_engine_help(), metavar="ENGINE")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("build", help="build a model from a Stockholm alignment")
    p.add_argument("alignment", help="Stockholm seed alignment")
    p.add_argument("output", help="output model file")
    p.add_argument("--name", default=None, help="model name (default: #=GF ID)")
    p.add_argument("--symfrac", type=float, default=0.5)
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("align", help="align sequences to a model (hmmalign)")
    p.add_argument("model", help="model file")
    p.add_argument("sequences", help="FASTA of sequences to align")
    p.add_argument("output", help="output Stockholm alignment")
    p.set_defaults(func=_cmd_align)

    p = sub.add_parser("scan", help="scan sequences against a model library")
    p.add_argument(
        "models",
        help="model library: a pressed store, a directory of .hmm "
             "files, or one model file",
    )
    p.add_argument("sequence", help="FASTA of query sequences")
    p.add_argument(
        "--library", default=None, metavar="STORE",
        help="scan against this pressed store instead of the positional "
             "model path (see the press subcommand)",
    )
    p.add_argument("--length", type=int, default=350)
    p.add_argument("--calibration-sample", type=int, default=150)
    p.add_argument("--engine", type=_engine, default="cpu",
                   help=_engine_help(), metavar="ENGINE")
    p.add_argument(
        "--devices", default="k40=2,gtx580=2",
        help="device pool for gpu scans, e.g. 'k40=2,gtx580=2'",
    )
    p.add_argument(
        "--top-hits", type=int, default=None, metavar="N",
        help="report only the N most significant hits",
    )
    p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint completed launch groups to a crash-consistent "
             "WAL v2 journal at PATH",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="replay launch groups already checkpointed in --journal "
             "(requires --journal)",
    )
    _add_search_flags(p)
    p.set_defaults(func=_cmd_scan)

    p = sub.add_parser(
        "press",
        help="press a model library into a calibrated on-disk store",
    )
    p.add_argument(
        "models", help="directory of .hmm model files (or one model file)"
    )
    p.add_argument("store", help="directory to write the pressed store into")
    p.add_argument("--length", type=int, default=350)
    p.add_argument("--calibration-sample", type=int, default=150)
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict", action="store_false", dest="salvage", default=False,
        help="fail on the first unreadable model file (default)",
    )
    mode.add_argument(
        "--salvage", action="store_true", dest="salvage",
        help="quarantine unreadable model files and press the rest",
    )
    p.set_defaults(func=_cmd_press)

    p = sub.add_parser(
        "batch",
        help="run a manifest of search jobs through the batch service",
    )
    p.add_argument("manifest", help="JSON manifest of model/database jobs")
    p.add_argument(
        "--devices", default="k40=2,gtx580=2",
        help="device pool, e.g. 'k40=2,gtx580=2' (default: mixed 2+2)",
    )
    p.add_argument("--cache-size", type=int, default=8,
                   help="pipeline cache entries (default 8)")
    p.add_argument("--length", type=int, default=400, help="length-model L")
    p.add_argument("--calibration-sample", type=int, default=400)
    p.add_argument("--show-hits", action="store_true",
                   help="print per-job hit summaries after the report")
    p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint completed jobs and shards to a crash-consistent "
             "WAL v2 journal at PATH",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip jobs (and replay shards) already checkpointed in "
             "--journal (requires --journal)",
    )
    p.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="arm a deterministic seeded fault plan (chaos drill); "
             "injected faults never change reported hits",
    )
    p.add_argument(
        "--fault-count", type=int, default=4, metavar="N",
        help="number of faults in the seeded plan (default 4)",
    )
    p.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="arm admission control: refuse submissions once N jobs "
             "are in the system (exit 4)",
    )
    p.add_argument(
        "--max-backlog-cost", type=float, default=None, metavar="SECONDS",
        help="arm admission control: refuse submissions once the "
             "cost-model backlog exceeds SECONDS of modelled device "
             "time (exit 4)",
    )
    _add_search_flags(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "fsck",
        help="verify a pressed library store; optionally repair it",
    )
    p.add_argument("store", help="pressed store directory to check")
    p.add_argument(
        "--repair", action="store_true",
        help="rebuild damaged tables from verified models, quarantine "
             "unrecoverable entries and orphans, and rewrite the index",
    )
    p.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the machine-readable fsck report to FILE",
    )
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser("occupancy", help="print the Figure 9 occupancy table")
    p.add_argument("--stage", choices=("msv", "p7viterbi"), default="msv")
    p.add_argument("--device", choices=("k40", "gtx580"), default="k40")
    p.set_defaults(func=_cmd_occupancy)

    p = sub.add_parser(
        "figures", help="regenerate the paper's evaluation figures"
    )
    p.add_argument(
        "--sizes", type=int, nargs="*", default=None,
        help="model sizes to sweep (default: the paper's eight)",
    )
    p.add_argument("--calibration-sample", type=int, default=150)
    p.set_defaults(func=_cmd_figures)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
