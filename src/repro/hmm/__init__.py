"""Plan-7 profile HMMs: core models, builders, search profiles, file I/O."""

from .background import NullModel
from .builder import build_hmm_from_msa, consensus_columns, henikoff_weights
from .hmmfile import dumps_hmm, load_hmm, loads_hmm, save_hmm
from .info import (
    expected_domain_length,
    match_occupancy,
    mean_relative_entropy,
    relative_entropy,
)
from .plan7 import TRANSITION_NAMES, Plan7HMM
from .profile import SearchProfile, SpecialScores
from .sampler import (
    PAPER_MODEL_SIZES,
    PFAM_SIZE_BANDS,
    pfam_band_fractions,
    sample_hmm,
    sample_pfam_size,
)

__all__ = [
    "Plan7HMM",
    "TRANSITION_NAMES",
    "NullModel",
    "SearchProfile",
    "SpecialScores",
    "build_hmm_from_msa",
    "consensus_columns",
    "henikoff_weights",
    "save_hmm",
    "load_hmm",
    "loads_hmm",
    "dumps_hmm",
    "relative_entropy",
    "mean_relative_entropy",
    "match_occupancy",
    "expected_domain_length",
    "sample_hmm",
    "sample_pfam_size",
    "pfam_band_fractions",
    "PAPER_MODEL_SIZES",
    "PFAM_SIZE_BANDS",
]
