"""The null (background) model against which log-odds are scored.

HMMER's null model emits i.i.d. background residues with a geometric
length distribution: ``p1 = L / (L + 1)`` is the self-loop probability,
re-set for each target sequence length.  Log-odds profile scores divide
out the emission part; the length part enters the final bit score.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..sequence.synthetic import BACKGROUND_FREQUENCIES

__all__ = ["NullModel"]


@dataclass(frozen=True)
class NullModel:
    """i.i.d. background emission model with geometric length model."""

    frequencies: np.ndarray = field(
        default_factory=lambda: BACKGROUND_FREQUENCIES.copy()
    )

    def __post_init__(self) -> None:
        f = np.ascontiguousarray(self.frequencies, dtype=np.float64)
        if f.shape != (20,):
            raise ModelError("null model needs 20 canonical frequencies")
        if np.any(f <= 0) or not math.isclose(float(f.sum()), 1.0, abs_tol=1e-6):
            raise ModelError("null frequencies must be positive and sum to 1")
        object.__setattr__(self, "frequencies", f / f.sum())

    def loop_probability(self, L: int) -> float:
        """Self-loop probability ``p1`` for a length-``L`` target."""
        if L < 1:
            raise ModelError("target length must be positive")
        return L / (L + 1.0)

    def length_log_likelihood(self, L: int) -> float:
        """Log-likelihood (nats) of emitting exactly ``L`` residues.

        The geometric length model contributes ``L*log(p1) + log(1-p1)``;
        emission terms cancel inside log-odds scores so they are excluded.
        """
        p1 = self.loop_probability(L)
        return L * math.log(p1) + math.log(1.0 - p1)

    def log_frequencies(self) -> np.ndarray:
        """Natural-log background frequencies, shape ``(20,)``."""
        return np.log(self.frequencies)
