"""Flat-file save/load for Plan-7 models (HMMER3-like text format).

The format is a simplified cousin of HMMER3's ``.hmm`` files::

    REPRO-HMM 1.0
    NAME  globin
    DESC  optional free text
    LENG  148
    ALPH  amino
    HMM
      <match emissions: 20 floats>      # node 1
      <insert emissions: 20 floats>
      <transitions: 7 floats MM MI MD IM II DM DD>
      ... repeated per node ...
    //

Values are written with 9 significant digits, which round-trips every
probability to well below the model validator's tolerance.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from ..errors import FormatError
from .plan7 import Plan7HMM

__all__ = ["save_hmm", "load_hmm", "loads_hmm", "dumps_hmm"]

_MAGIC = "REPRO-HMM 1.0"


def _format_row(values: np.ndarray) -> str:
    return "  " + " ".join(f"{v:.9g}" for v in values)


def dumps_hmm(hmm: Plan7HMM) -> str:
    """Serialize a model to the flat text format."""
    lines = [_MAGIC, f"NAME  {hmm.name}"]
    if hmm.description:
        lines.append(f"DESC  {hmm.description}")
    lines += [f"LENG  {hmm.M}", "ALPH  amino", "HMM"]
    for k in range(hmm.M):
        lines.append(_format_row(hmm.match_emissions[k]))
        lines.append(_format_row(hmm.insert_emissions[k]))
        lines.append(_format_row(hmm.transitions[k]))
    lines.append("//")
    return "\n".join(lines) + "\n"


def save_hmm(path: str | Path, hmm: Plan7HMM) -> None:
    """Write a model to ``path``."""
    Path(path).write_text(dumps_hmm(hmm), encoding="ascii")


def _read_header(lines: list[str]) -> tuple[dict[str, str], int]:
    if not lines or lines[0].strip() != _MAGIC:
        raise FormatError(f"missing magic line {_MAGIC!r}")
    fields: dict[str, str] = {}
    i = 1
    while i < len(lines):
        line = lines[i].strip()
        if line == "HMM":
            return fields, i + 1
        key, _, value = line.partition(" ")
        if key not in {"NAME", "DESC", "LENG", "ALPH"}:
            raise FormatError(f"unexpected header line {line!r}")
        fields[key] = value.strip()
        i += 1
    raise FormatError("missing HMM section")


def loads_hmm(text: str) -> Plan7HMM:
    """Parse a model from flat text."""
    lines = text.splitlines()
    fields, body_start = _read_header(lines)
    for required in ("NAME", "LENG", "ALPH"):
        if required not in fields:
            raise FormatError(f"missing required header field {required}")
    if fields["ALPH"] != "amino":
        raise FormatError(f"unsupported alphabet {fields['ALPH']!r}")
    try:
        M = int(fields["LENG"])
    except ValueError:
        raise FormatError(f"bad LENG value {fields['LENG']!r}") from None

    body = [ln for ln in lines[body_start:] if ln.strip()]
    if not body or body[-1].strip() != "//":
        raise FormatError("model must end with a // terminator line")
    rows = body[:-1]
    if len(rows) != 3 * M:
        raise FormatError(f"expected {3 * M} data rows for LENG {M}, got {len(rows)}")

    def parse(row: str, n: int, what: str, node: int) -> np.ndarray:
        parts = row.split()
        if len(parts) != n:
            raise FormatError(
                f"node {node}: {what} row has {len(parts)} values, expected {n}"
            )
        try:
            return np.array([float(p) for p in parts], dtype=np.float64)
        except ValueError:
            raise FormatError(f"node {node}: non-numeric value in {what} row") from None

    match = np.empty((M, 20))
    insert = np.empty((M, 20))
    transitions = np.empty((M, 7))
    for k in range(M):
        match[k] = parse(rows[3 * k], 20, "match emission", k + 1)
        insert[k] = parse(rows[3 * k + 1], 20, "insert emission", k + 1)
        transitions[k] = parse(rows[3 * k + 2], 7, "transition", k + 1)

    return Plan7HMM(
        name=fields["NAME"],
        match_emissions=match,
        insert_emissions=insert,
        transitions=transitions,
        description=fields.get("DESC", ""),
    )


def load_hmm(path: str | Path) -> Plan7HMM:
    """Read a model from ``path``."""
    return loads_hmm(Path(path).read_text(encoding="ascii"))
