"""Flat-file save/load for Plan-7 models (HMMER3-like text format).

The format is a simplified cousin of HMMER3's ``.hmm`` files::

    REPRO-HMM 1.0
    NAME  globin
    DESC  optional free text
    LENG  148
    ALPH  amino
    HMM
      <match emissions: 20 floats>      # node 1
      <insert emissions: 20 floats>
      <transitions: 7 floats MM MI MD IM II DM DD>
      ... repeated per node ...
    //

Values are written with 9 significant digits, which round-trips every
probability to well below the model validator's tolerance.

Every structural error is a :class:`~repro.errors.FormatError` carrying
the source name and the 1-based line number where parsing gave up; the
node count is validated against ``LENG`` *before* any float parsing, so
a truncated download fails at the reader with a clear message instead of
deep inside :class:`~repro.hmm.plan7.Plan7HMM` validation.  In salvage
mode (:data:`repro.hardening.SALVAGE`) a model is all-or-nothing: a
broken file is quarantined whole (kind ``hmm``) and ``None`` returned,
because there is no meaningful "partial HMM" to search with.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import FormatError
from ..hardening import IngestPolicy, RecordQuarantine, STRICT
from .plan7 import Plan7HMM

__all__ = ["save_hmm", "load_hmm", "loads_hmm", "dumps_hmm"]

_MAGIC = "REPRO-HMM 1.0"


def _format_row(values: np.ndarray) -> str:
    return "  " + " ".join(f"{v:.9g}" for v in values)


def dumps_hmm(hmm: Plan7HMM) -> str:
    """Serialize a model to the flat text format."""
    lines = [_MAGIC, f"NAME  {hmm.name}"]
    if hmm.description:
        lines.append(f"DESC  {hmm.description}")
    lines += [f"LENG  {hmm.M}", "ALPH  amino", "HMM"]
    for k in range(hmm.M):
        lines.append(_format_row(hmm.match_emissions[k]))
        lines.append(_format_row(hmm.insert_emissions[k]))
        lines.append(_format_row(hmm.transitions[k]))
    lines.append("//")
    return "\n".join(lines) + "\n"


def save_hmm(path: str | Path, hmm: Plan7HMM) -> None:
    """Write a model to ``path``."""
    Path(path).write_text(dumps_hmm(hmm), encoding="ascii")


def _read_header(lines: list[str], source: str) -> tuple[dict[str, str], int]:
    if not lines or lines[0].strip() != _MAGIC:
        raise FormatError(f"{source}: line 1: missing magic line {_MAGIC!r}")
    fields: dict[str, str] = {}
    i = 1
    while i < len(lines):
        line = lines[i].strip()
        if line == "HMM":
            return fields, i + 1
        key, _, value = line.partition(" ")
        if key not in {"NAME", "DESC", "LENG", "ALPH"}:
            raise FormatError(
                f"{source}: line {i + 1}: unexpected header line {line!r}"
            )
        fields[key] = value.strip()
        i += 1
    raise FormatError(f"{source}: missing HMM section")


def _parse_model(lines: list[str], source: str) -> Plan7HMM:
    fields, body_start = _read_header(lines, source)
    for required in ("NAME", "LENG", "ALPH"):
        if required not in fields:
            raise FormatError(
                f"{source}: missing required header field {required}"
            )
    if fields["ALPH"] != "amino":
        raise FormatError(
            f"{source}: unsupported alphabet {fields['ALPH']!r}"
        )
    try:
        M = int(fields["LENG"])
    except ValueError:
        raise FormatError(
            f"{source}: bad LENG value {fields['LENG']!r}"
        ) from None
    if M < 1:
        raise FormatError(f"{source}: LENG must be positive, got {M}")

    body = [
        (i + 1, ln.strip())
        for i, ln in enumerate(lines)
        if i >= body_start and ln.strip()
    ]
    last_line = body[-1][0] if body else len(lines)
    if not body or body[-1][1] != "//":
        raise FormatError(
            f"{source}: line {last_line}: truncated model - file must end "
            "with a // terminator line"
        )
    rows = body[:-1]
    # validate the node count against LENG up front so a truncated body
    # is reported here, with a line number, rather than surfacing as a
    # shape mismatch inside Plan7HMM construction
    if len(rows) != 3 * M:
        raise FormatError(
            f"{source}: line {last_line}: expected {3 * M} data rows "
            f"(3 per node) for LENG {M}, got {len(rows)} - "
            "model body is truncated or LENG is wrong"
        )

    def parse(lineno: int, row: str, n: int, what: str, node: int) -> np.ndarray:
        parts = row.split()
        if len(parts) != n:
            raise FormatError(
                f"{source}: line {lineno}: node {node}: {what} row has "
                f"{len(parts)} values, expected {n}"
            )
        try:
            return np.array([float(p) for p in parts], dtype=np.float64)
        except ValueError:
            raise FormatError(
                f"{source}: line {lineno}: node {node}: non-numeric value "
                f"in {what} row"
            ) from None

    match = np.empty((M, 20))
    insert = np.empty((M, 20))
    transitions = np.empty((M, 7))
    for k in range(M):
        match[k] = parse(*rows[3 * k], 20, "match emission", k + 1)
        insert[k] = parse(*rows[3 * k + 1], 20, "insert emission", k + 1)
        transitions[k] = parse(*rows[3 * k + 2], 7, "transition", k + 1)

    return Plan7HMM(
        name=fields["NAME"],
        match_emissions=match,
        insert_emissions=insert,
        transitions=transitions,
        description=fields.get("DESC", ""),
    )


def loads_hmm(
    text: str,
    source: str = "hmm",
    policy: IngestPolicy = STRICT,
    quarantine: RecordQuarantine | None = None,
) -> Plan7HMM | None:
    """Parse a model from flat text.

    Strict mode raises :class:`FormatError` on any structural problem.
    Salvage mode quarantines the whole model instead and returns
    ``None`` - a partially-parsed HMM is never usable for scoring.
    """
    try:
        return _parse_model(text.splitlines(), source)
    except FormatError as exc:
        if not policy.salvage:
            raise
        q = quarantine if quarantine is not None else RecordQuarantine()
        q.add(source, 0, source, str(exc), kind="hmm")
        return None


def load_hmm(
    path: str | Path,
    policy: IngestPolicy = STRICT,
    quarantine: RecordQuarantine | None = None,
) -> Plan7HMM | None:
    """Read a model from ``path`` (``None`` if salvaged away)."""
    path = Path(path)
    return loads_hmm(
        path.read_text(encoding="ascii"),
        source=str(path),
        policy=policy,
        quarantine=quarantine,
    )
