"""Content identity of a Plan-7 model: fingerprints and derived seeds.

The fingerprint is the stable SHA-256 of a model's name, size and all
probability tables, quantized to 1e-6 so a save/load round trip through
the flat text format (which stores ~10 significant digits) preserves
it.  It is the key of every content-addressed cache in the project: the
in-memory :class:`~repro.service.cache.PipelineCache` and the on-disk
:class:`~repro.scan.catalog.LibraryCatalog` both invalidate entries by
fingerprint, never by file name or object identity.

:func:`content_seed` folds a fingerprint into a calibration seed.
Seeding calibration from *content* rather than library position makes
scan results permutation-invariant: reordering the model files of a
library cannot change any model's calibrated null distribution, so it
cannot change any score or E-value.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .plan7 import Plan7HMM

__all__ = ["hmm_fingerprint", "content_seed", "seed_from_fingerprint"]


def hmm_fingerprint(hmm: Plan7HMM) -> str:
    """Stable content hash of a model (name, size and all tables).

    Probabilities are quantized to 1e-6 before hashing so a model
    survives a save/load round trip through the flat text format (which
    stores ~10 significant digits) with its fingerprint intact.
    """
    h = hashlib.sha256()
    h.update(hmm.name.encode())
    h.update(str(hmm.M).encode())
    for table in (hmm.match_emissions, hmm.insert_emissions, hmm.transitions):
        h.update(np.round(table * 1e6).astype(np.int64).tobytes())
    return h.hexdigest()


def seed_from_fingerprint(fingerprint: str, base_seed: int = 42) -> int:
    """Fold an already-computed fingerprint into a calibration seed."""
    digest = hashlib.sha256(f"{fingerprint}/{base_seed}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def content_seed(hmm: Plan7HMM, base_seed: int = 42) -> int:
    """A deterministic calibration seed derived from model content.

    Mixing ``base_seed`` in keeps distinct library-wide seeds producing
    distinct calibration samples, while removing any dependence on the
    model's *position* in a library - the order-dependent ``seed + i``
    scheme this replaces made scan hits change when a library directory
    was merely re-sorted.
    """
    return seed_from_fingerprint(hmm_fingerprint(hmm), base_seed)
