"""Random Plan-7 models and the Pfam model-size distribution.

The paper benchmarks HMMs of sizes 48, 100, 200, 400, 800, 1002, 1528 and
2405 "representative of motifs of different protein families from small to
large in the Pfam HMM database", and notes that Pfam 27.0 has 84.5% of
models of size <= 400, 14.4% between 401 and 1000, and 1.1% above 1000.
Only the *size* of a model matters to the performance experiments, so we
generate reproducible random models at those sizes; conservation is
controllable so planted homologs score as strongly as real Pfam hits.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from ..sequence.synthetic import BACKGROUND_FREQUENCIES
from .plan7 import Plan7HMM

__all__ = [
    "PAPER_MODEL_SIZES",
    "PFAM_SIZE_BANDS",
    "sample_hmm",
    "sample_pfam_size",
    "pfam_band_fractions",
]

#: The eight model sizes benchmarked in the paper (Section IV).
PAPER_MODEL_SIZES = (48, 100, 200, 400, 800, 1002, 1528, 2405)

#: (upper size bound, cumulative fraction) per the paper's Pfam 27.0 stats.
PFAM_SIZE_BANDS = (
    (400, 0.845),   # 84.5% of models have size <= 400
    (1000, 0.989),  # +14.4% in 401..1000
    (2500, 1.0),    # +1.1% above 1000 (2500 caps the long tail)
)

_MIN_MODEL_SIZE = 8


def sample_hmm(
    M: int,
    rng: np.random.Generator,
    name: str | None = None,
    conservation: float = 12.0,
) -> Plan7HMM:
    """Generate a reproducible random Plan-7 model of length ``M``.

    Parameters
    ----------
    conservation:
        Dirichlet concentration placed on each column's consensus residue;
        larger values give more conserved (information-rich) columns.  The
        default yields per-column relative entropies comparable to Pfam
        seed alignments (~1 bit/position on average).
    """
    if M < 1:
        raise ModelError("model length must be positive")
    if conservation <= 0:
        raise ModelError("conservation must be positive")
    consensus = rng.choice(20, size=M, p=BACKGROUND_FREQUENCIES)
    alpha = np.tile(BACKGROUND_FREQUENCIES * 4.0, (M, 1))
    alpha[np.arange(M), consensus] += conservation
    match = rng.gamma(alpha)  # Dirichlet via normalized gammas
    match /= match.sum(axis=1, keepdims=True)
    insert = np.tile(BACKGROUND_FREQUENCIES, (M, 1))

    transitions = np.empty((M, 7), dtype=np.float64)
    t_mi = rng.uniform(0.005, 0.03, size=M)
    t_md = rng.uniform(0.005, 0.03, size=M)
    transitions[:, 0] = 1.0 - t_mi - t_md  # MM
    transitions[:, 1] = t_mi
    transitions[:, 2] = t_md
    t_ii = rng.uniform(0.25, 0.55, size=M)
    transitions[:, 3] = 1.0 - t_ii  # IM
    transitions[:, 4] = t_ii
    t_dd = rng.uniform(0.2, 0.5, size=M)
    transitions[:, 5] = 1.0 - t_dd  # DM
    transitions[:, 6] = t_dd
    # node-M boundary: everything exits to E.
    transitions[M - 1] = (1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0)

    return Plan7HMM(
        name=name or f"synth{M}",
        match_emissions=match,
        insert_emissions=insert,
        transitions=transitions,
        description=f"random Plan-7 model, M={M}",
    )


def sample_pfam_size(rng: np.random.Generator) -> int:
    """Draw a model size from the paper's Pfam 27.0 band distribution.

    Sizes are log-uniform within each band, which approximates the heavy
    right tail of real Pfam lengths.
    """
    u = rng.random()
    low = _MIN_MODEL_SIZE
    prev_cum = 0.0
    for high, cum in PFAM_SIZE_BANDS:
        if u <= cum:
            size = np.exp(rng.uniform(np.log(low), np.log(high)))
            return int(np.clip(round(size), low, high))
        low, prev_cum = high + 1, cum
    raise AssertionError("unreachable: bands cover [0, 1]")


def pfam_band_fractions(sizes: np.ndarray) -> dict[str, float]:
    """Fraction of ``sizes`` in each paper band (for the tab-pfam bench)."""
    sizes = np.asarray(sizes)
    if sizes.size == 0:
        raise ModelError("need at least one size")
    n = sizes.size
    return {
        "<=400": float((sizes <= 400).sum() / n),
        "401-1000": float(((sizes > 400) & (sizes <= 1000)).sum() / n),
        ">1000": float((sizes > 1000).sum() / n),
    }
