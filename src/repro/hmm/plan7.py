"""Plan-7 profile hidden Markov models (core probability form).

A Plan-7 model (Eddy 1998) has ``M`` nodes, each with a Match, Insert and
Delete state.  Node ``k`` (1-based) owns seven transitions to node ``k+1``:

====  =======================
MM    Match(k)  -> Match(k+1)
MI    Match(k)  -> Insert(k)
MD    Match(k)  -> Delete(k+1)
IM    Insert(k) -> Match(k+1)
II    Insert(k) -> Insert(k)
DM    Delete(k) -> Match(k+1)
DD    Delete(k) -> Delete(k+1)
====  =======================

Node ``M`` transitions lead to the End state instead: the model stores
``MM=1, MI=0, MD=0, IM=1, II=0, DM=1, DD=0`` at index ``M-1`` (there is no
Insert state at node M, matching HMMER).  The flanking S/N/B/E/C/J/T states
belong to the *search profile* (:mod:`repro.hmm.profile`), not to the core
model.

All probabilities are stored densely as float64 NumPy arrays; the class
validates stochasticity on construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..sequence.synthetic import BACKGROUND_FREQUENCIES

__all__ = ["Plan7HMM", "TRANSITION_NAMES"]

#: Canonical order of the seven per-node transitions.
TRANSITION_NAMES = ("MM", "MI", "MD", "IM", "II", "DM", "DD")

_PROB_ATOL = 1e-6


@dataclass
class Plan7HMM:
    """A Plan-7 core model over the 20 canonical amino acids.

    Parameters
    ----------
    name:
        Model name (e.g. a Pfam accession).
    match_emissions:
        ``(M, 20)`` match emission probabilities, rows sum to 1.
    insert_emissions:
        ``(M, 20)`` insert emission probabilities, rows sum to 1.
    transitions:
        ``(M, 7)`` transition probabilities in :data:`TRANSITION_NAMES`
        order; groups (MM,MI,MD), (IM,II), (DM,DD) each sum to 1.
    """

    name: str
    match_emissions: np.ndarray
    insert_emissions: np.ndarray
    transitions: np.ndarray
    description: str = ""
    _consensus: str = field(default="", repr=False, compare=False)

    def __post_init__(self) -> None:
        me = np.ascontiguousarray(self.match_emissions, dtype=np.float64)
        ie = np.ascontiguousarray(self.insert_emissions, dtype=np.float64)
        tr = np.ascontiguousarray(self.transitions, dtype=np.float64)
        if me.ndim != 2 or me.shape[1] != 20:
            raise ModelError("match_emissions must have shape (M, 20)")
        M = me.shape[0]
        if M < 1:
            raise ModelError("model must have at least one node")
        if ie.shape != (M, 20):
            raise ModelError("insert_emissions must have shape (M, 20)")
        if tr.shape != (M, 7):
            raise ModelError("transitions must have shape (M, 7)")
        if np.any(me < 0) or np.any(ie < 0) or np.any(tr < 0):
            raise ModelError("probabilities must be non-negative")
        for label, arr in (("match", me), ("insert", ie)):
            if not np.allclose(arr.sum(axis=1), 1.0, atol=_PROB_ATOL):
                raise ModelError(f"{label} emission rows must each sum to 1")
        groups = {"MM+MI+MD": tr[:, 0:3], "IM+II": tr[:, 3:5], "DM+DD": tr[:, 5:7]}
        for label, block in groups.items():
            if not np.allclose(block.sum(axis=1), 1.0, atol=_PROB_ATOL):
                raise ModelError(f"transition group {label} must sum to 1 per node")
        # node-M boundary: all paths must leave the model (no I_M, no D->D).
        if not (
            np.isclose(tr[M - 1, 1], 0.0, atol=_PROB_ATOL)
            and np.isclose(tr[M - 1, 2], 0.0, atol=_PROB_ATOL)
            and np.isclose(tr[M - 1, 6], 0.0, atol=_PROB_ATOL)
        ):
            raise ModelError("node M must have MI = MD = DD = 0 (exits to E)")
        self.match_emissions = me
        self.insert_emissions = ie
        self.transitions = tr

    # -- introspection ------------------------------------------------------

    @property
    def M(self) -> int:
        """Model length (number of match states / consensus columns)."""
        return int(self.match_emissions.shape[0])

    def transition(self, kind: str) -> np.ndarray:
        """One named transition column, shape ``(M,)``."""
        try:
            idx = TRANSITION_NAMES.index(kind)
        except ValueError:
            raise ModelError(f"unknown transition kind {kind!r}") from None
        return self.transitions[:, idx]

    @property
    def consensus(self) -> str:
        """One-letter consensus: most probable residue per match state."""
        if not self._consensus:
            from ..alphabet import AMINO

            best = np.argmax(self.match_emissions, axis=1)
            object.__setattr__(
                self, "_consensus", "".join(AMINO.symbols[b] for b in best)
            )
        return self._consensus

    def mean_match_entropy(self) -> float:
        """Average Shannon entropy (bits) of the match emissions."""
        p = np.clip(self.match_emissions, 1e-300, None)
        return float(-(p * np.log2(p)).sum(axis=1).mean())

    # -- generative use -------------------------------------------------------

    def sample_sequence(self, rng: np.random.Generator) -> np.ndarray:
        """Emit one domain by a stochastic traversal of the core model.

        The walk enters at Match(1) and follows the node transitions until
        it exits past node M; the returned array holds the emitted residue
        codes.  Used to plant homologs in synthetic databases.
        """
        tr = self.transitions
        out: list[int] = []
        k, state = 1, "M"
        while k <= self.M:
            if state == "M":
                out.append(
                    int(rng.choice(20, p=self.match_emissions[k - 1]))
                )
                nxt = rng.choice(3, p=tr[k - 1, 0:3] / tr[k - 1, 0:3].sum())
                if nxt == 0:
                    k, state = k + 1, "M"
                elif nxt == 1:
                    state = "I"
                else:
                    k, state = k + 1, "D"
            elif state == "I":
                out.append(
                    int(rng.choice(20, p=self.insert_emissions[k - 1]))
                )
                nxt = rng.choice(2, p=tr[k - 1, 3:5] / tr[k - 1, 3:5].sum())
                if nxt == 0:
                    k, state = k + 1, "M"
            else:  # Delete
                nxt = rng.choice(2, p=tr[k - 1, 5:7] / tr[k - 1, 5:7].sum())
                if nxt == 0:
                    k, state = k + 1, "M"
                else:
                    k, state = k + 1, "D"
        if not out:  # an all-delete path is possible in principle
            out.append(int(rng.choice(20, p=BACKGROUND_FREQUENCIES)))
        return np.array(out, dtype=np.uint8)

    def __repr__(self) -> str:
        return f"Plan7HMM(name={self.name!r}, M={self.M})"
