"""``hmmbuild``-style construction of a Plan-7 model from an alignment.

The builder follows the classic recipe:

1. mark *consensus columns* - alignment columns whose residue occupancy is
   at least ``symfrac`` (HMMER default 0.5);
2. weight sequences with the position-based Henikoff & Henikoff (1994)
   scheme to discount redundant alignment members;
3. accumulate weighted emission and transition counts along each
   sequence's implied Plan-7 state path;
4. mix in background-proportional pseudocounts (a single-component prior,
   a simplification of HMMER's Dirichlet mixtures) and normalize.

Insert emissions are set to the background, matching how HMMER 3.0
configures search profiles regardless of counted insert residues.
"""

from __future__ import annotations

from collections.abc import Sequence as AbcSequence

import numpy as np

from ..alphabet import AMINO
from ..errors import ModelError
from ..sequence.synthetic import BACKGROUND_FREQUENCIES
from .plan7 import Plan7HMM

__all__ = ["build_hmm_from_msa", "henikoff_weights", "consensus_columns"]

_GAP_CHARS = frozenset("-.~")


def _validate_msa(msa: AbcSequence[str]) -> list[str]:
    if len(msa) == 0:
        raise ModelError("alignment must contain at least one sequence")
    width = len(msa[0])
    if width == 0:
        raise ModelError("alignment columns cannot be empty")
    rows = []
    for i, row in enumerate(msa):
        if len(row) != width:
            raise ModelError(
                f"alignment row {i} has length {len(row)}, expected {width}"
            )
        rows.append(row.upper())
    return rows


def _residue_matrix(rows: list[str]) -> np.ndarray:
    """Digital codes with -1 marking gaps, shape ``(n_seqs, width)``."""
    n, width = len(rows), len(rows[0])
    out = np.full((n, width), -1, dtype=np.int16)
    for i, row in enumerate(rows):
        for j, ch in enumerate(row):
            if ch in _GAP_CHARS:
                continue
            out[i, j] = AMINO.code(ch)
    return out


def consensus_columns(msa: AbcSequence[str], symfrac: float = 0.5) -> np.ndarray:
    """Indices of alignment columns assigned to match states."""
    if not 0.0 < symfrac <= 1.0:
        raise ModelError("symfrac must be in (0, 1]")
    codes = _residue_matrix(_validate_msa(msa))
    occupancy = (codes >= 0).mean(axis=0)
    cols = np.flatnonzero(occupancy >= symfrac)
    if cols.size == 0:
        raise ModelError(
            f"no alignment column reaches occupancy {symfrac}; "
            "cannot determine consensus"
        )
    return cols


def henikoff_weights(msa: AbcSequence[str]) -> np.ndarray:
    """Position-based sequence weights (Henikoff & Henikoff 1994).

    Each column distributes one unit of weight: a residue observed in a
    column receives ``1 / (r * s)`` where ``r`` is the number of distinct
    residues in the column and ``s`` how many sequences carry this one.
    Weights are normalized to mean 1.
    """
    codes = _residue_matrix(_validate_msa(msa))
    n, width = codes.shape
    weights = np.zeros(n, dtype=np.float64)
    for j in range(width):
        col = codes[:, j]
        present = col >= 0
        if not present.any():
            continue
        values, inverse, counts = np.unique(
            col[present], return_inverse=True, return_counts=True
        )
        r = values.size
        weights[present] += 1.0 / (r * counts[inverse])
    if weights.sum() == 0:
        weights[:] = 1.0
    return weights * n / weights.sum()


def build_hmm_from_msa(
    msa: AbcSequence[str],
    name: str = "msa-model",
    symfrac: float = 0.5,
    pseudocount: float = 1.0,
    weighting: bool = True,
) -> Plan7HMM:
    """Build a Plan-7 model from an aligned set of sequences.

    Parameters
    ----------
    msa:
        Aligned rows of equal width; gaps are ``- . ~``.  Degenerate
        residue codes are counted fractionally across their possibilities.
    symfrac:
        Minimum residue occupancy for a column to become a match state.
    pseudocount:
        Total pseudocount mass mixed into every emission/transition
        distribution, spread proportionally to the background (emissions)
        or uniformly (transitions).
    weighting:
        Apply Henikoff position-based sequence weighting (default True).
    """
    rows = _validate_msa(msa)
    cols = consensus_columns(rows, symfrac)
    M = int(cols.size)
    codes = _residue_matrix(rows)
    weights = henikoff_weights(rows) if weighting else np.ones(len(rows))
    degeneracy = AMINO.degeneracy_matrix().astype(np.float64)
    degeneracy /= np.clip(degeneracy.sum(axis=1, keepdims=True), 1.0, None)

    is_consensus = np.zeros(codes.shape[1], dtype=bool)
    is_consensus[cols] = True
    col_to_node = {int(c): k for k, c in enumerate(cols)}  # node index 0..M-1

    match_counts = np.zeros((M, 20), dtype=np.float64)
    # transition counts in TRANSITION_NAMES order per origin node 1..M
    t_counts = np.zeros((M, 7), dtype=np.float64)

    for i in range(codes.shape[0]):
        w = weights[i]
        # emission counts
        for j in cols:
            c = codes[i, j]
            if c >= 0:
                match_counts[col_to_node[int(j)]] += w * degeneracy[c]
        # state path: walk columns left to right, tracking the current
        # Plan-7 state at each consensus node
        path: list[tuple[int, str]] = []  # (node 1..M, state letter)
        node = 0
        for j in range(codes.shape[1]):
            c = codes[i, j]
            if is_consensus[j]:
                node += 1
                path.append((node, "M" if c >= 0 else "D"))
            elif c >= 0 and 0 < node < M:
                path.append((node, "I"))
        for (node_a, sa), (_, sb) in zip(path, path[1:]):
            kind = sa + ("I" if sb == "I" else sb)
            # normalize I self-loop naming: I->I is "II", I->M is "IM" etc.
            if sa == "I":
                kind = "I" + ("I" if sb == "I" else sb)
            index = {"MM": 0, "MI": 1, "MD": 2, "IM": 3, "II": 4,
                     "DM": 5, "DD": 6}.get(kind)
            if index is not None and node_a <= M:
                t_counts[node_a - 1, index] += w

    # pseudocounts and normalization
    match = match_counts + pseudocount * BACKGROUND_FREQUENCIES
    match /= match.sum(axis=1, keepdims=True)
    insert = np.tile(BACKGROUND_FREQUENCIES, (M, 1))

    transitions = np.empty((M, 7), dtype=np.float64)
    prior = pseudocount / 3.0
    for start, end in ((0, 3), (3, 5), (5, 7)):
        block = t_counts[:, start:end] + prior
        transitions[:, start:end] = block / block.sum(axis=1, keepdims=True)
    transitions[M - 1] = (1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0)

    return Plan7HMM(
        name=name,
        match_emissions=match,
        insert_emissions=insert,
        transitions=transitions,
        description=f"built from {len(rows)} aligned sequences",
    )
