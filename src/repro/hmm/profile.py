"""Search-profile configuration: core HMM -> log-odds scoring profile.

A :class:`SearchProfile` wraps a Plan-7 core model with HMMER 3.0's
"implicit probabilistic model" for local alignment:

* uniform local entry ``B -> M_k`` with probability ``2 / (M (M+1))``,
* free local exit ``M_k -> E`` (score 0),
* multihit flanking machinery ``S-N-B ... E-C-T`` with a ``J`` loop whose
  probabilities depend on the target sequence length ``L``.

All scores are **nats** (natural-log odds against the null model).  Match
emission scores are precomputed for every digital code, marginalizing
degenerate residues by expected probability; gap/special codes score
minus infinity.  Insert emission scores are zero, HMMER 3.0's convention
(insert emissions are set equal to the background).

The float profile is the single source of truth that the quantized MSV
byte profile and ViterbiFilter word profile (:mod:`repro.scoring`) are
derived from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..alphabet import AMINO
from ..errors import ProfileError
from .background import NullModel
from .plan7 import Plan7HMM

__all__ = ["SearchProfile", "SpecialScores"]

#: Scores treated as impossible transitions/emissions.
_NEG_INF = float("-inf")


@dataclass(frozen=True)
class SpecialScores:
    """Log scores (nats) of the flanking special-state transitions."""

    E_move: float  # E -> C
    E_loop: float  # E -> J
    N_loop: float  # N -> N (per emitted residue)
    N_move: float  # N -> B
    C_loop: float  # C -> C
    C_move: float  # C -> T
    J_loop: float  # J -> J
    J_move: float  # J -> B


class SearchProfile:
    """Length-configured local search profile over a Plan-7 model.

    Parameters
    ----------
    hmm:
        The core model.
    null:
        Null model used for log-odds; defaults to the standard background.
    multihit:
        When True (default, matching ``hmmsearch``) the profile may align
        several domains per target via the J state.
    L:
        Target length the flanking length model is configured for; can be
        re-set cheaply with :meth:`configured_for_length`.
    """

    def __init__(
        self,
        hmm: Plan7HMM,
        null: NullModel | None = None,
        multihit: bool = True,
        L: int = 400,
    ) -> None:
        if L < 1:
            raise ProfileError("target length L must be positive")
        self.hmm = hmm
        self.null = null if null is not None else NullModel()
        self.multihit = multihit
        self.L = int(L)
        self.M = hmm.M

        self._build_match_scores()
        self._build_transition_scores()
        self._build_specials()

    # -- construction ---------------------------------------------------------

    def _build_match_scores(self) -> None:
        f = self.null.frequencies
        em = self.hmm.match_emissions  # (M, 20)
        degeneracy = AMINO.degeneracy_matrix()  # (Kp, 20) bool
        msc = np.full((AMINO.Kp, self.M), _NEG_INF, dtype=np.float64)
        for code in range(AMINO.Kp):
            mask = degeneracy[code]
            if not mask.any():
                continue  # gap/special: impossible
            # expected-probability marginalization for degenerate codes;
            # reduces to the plain log-odds for canonical residues.
            num = em[:, mask].sum(axis=1)
            den = f[mask].sum()
            with np.errstate(divide="ignore"):
                msc[code] = np.log(num / den)
        self.msc = msc  # (Kp, M): rows indexed by digital code, like rbv

    def _build_transition_scores(self) -> None:
        with np.errstate(divide="ignore"):
            logt = np.log(self.hmm.transitions)  # (M, 7), -inf where p == 0
        (self.tmm, self.tmi, self.tmd, self.tim, self.tii, self.tdm, self.tdd) = (
            np.ascontiguousarray(logt[:, j]) for j in range(7)
        )
        # Uniform local entry: B -> M_k for every k, p = 2 / (M (M+1)).
        self.tbm = math.log(2.0 / (self.M * (self.M + 1)))

    def _build_specials(self) -> None:
        L = self.L
        if self.multihit:
            e_move = e_loop = math.log(0.5)
            p_move = 3.0 / (L + 3.0)
        else:
            e_move, e_loop = 0.0, _NEG_INF
            p_move = 2.0 / (L + 2.0)
        loop = math.log(1.0 - p_move)
        move = math.log(p_move)
        self.specials = SpecialScores(
            E_move=e_move,
            E_loop=e_loop,
            N_loop=loop,
            N_move=move,
            C_loop=loop,
            C_move=move,
            J_loop=loop,
            J_move=move,
        )

    # -- public API -----------------------------------------------------------

    def configured_for_length(self, L: int) -> "SearchProfile":
        """A profile identical to this one but with the length model at L."""
        if L == self.L:
            return self
        return SearchProfile(self.hmm, self.null, multihit=self.multihit, L=L)

    def match_score_row(self, code: int) -> np.ndarray:
        """Match log-odds (nats) of digital code ``code`` at every node."""
        if not 0 <= code < AMINO.Kp:
            raise ProfileError(f"digital code {code} out of range")
        return self.msc[code]

    def null_length_correction(self, L: int) -> float:
        """Null-model length log-likelihood subtracted from raw scores."""
        return self.null.length_log_likelihood(L)

    def max_match_score(self) -> float:
        """Largest finite match emission score (used by quantizers)."""
        finite = self.msc[np.isfinite(self.msc)]
        if finite.size == 0:
            raise ProfileError("profile has no finite match scores")
        return float(finite.max())

    def min_match_score(self) -> float:
        """Most negative finite canonical match score (sets the MSV bias)."""
        canonical = self.msc[:20]
        finite = canonical[np.isfinite(canonical)]
        return float(finite.min())

    def __repr__(self) -> str:
        mode = "multihit" if self.multihit else "unihit"
        return f"SearchProfile({self.hmm.name!r}, M={self.M}, {mode}, L={self.L})"
