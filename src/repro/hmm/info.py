"""Model diagnostics: information content and state occupancy.

The quantities ``hmmstat`` reports for a model:

* per-position **relative entropy** (information content, bits) of the
  match emissions against the null - what makes a motif findable;
* **match-state occupancy** ``occ[k]``: the probability that a path
  through the core model visits ``M_k`` rather than ``D_k`` (HMMER uses
  it to weight entry points; here it diagnoses builder output);
* expected emitted length of one domain.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .background import NullModel
from .plan7 import Plan7HMM

__all__ = [
    "relative_entropy",
    "mean_relative_entropy",
    "match_occupancy",
    "expected_domain_length",
]


def relative_entropy(hmm: Plan7HMM, null: NullModel | None = None) -> np.ndarray:
    """Per-position information content (bits) of the match emissions."""
    null = null or NullModel()
    p = np.clip(hmm.match_emissions, 1e-300, None)
    return (p * np.log2(p / null.frequencies)).sum(axis=1)


def mean_relative_entropy(hmm: Plan7HMM, null: NullModel | None = None) -> float:
    """Mean information content (bits/position); Pfam models sit near
    ~1 bit after entropy weighting, unweighted seeds higher."""
    return float(relative_entropy(hmm, null).mean())


def match_occupancy(hmm: Plan7HMM) -> np.ndarray:
    """``occ[k]``: probability node ``k`` is visited in a Match state.

    Computed by propagating the (M, D) visit distribution through the
    node transitions, starting from a Match entry at node 1; insert
    visits return to the Match track so they do not change occupancy.
    """
    M = hmm.M
    occ = np.empty(M, dtype=np.float64)
    p_match = 1.0  # entered at M_1
    p_delete = 0.0
    occ[0] = p_match
    t = hmm.transitions
    for k in range(1, M):
        mm, mi, md = t[k - 1, 0], t[k - 1, 1], t[k - 1, 2]
        dm, dd = t[k - 1, 5], t[k - 1, 6]
        # M -> (M next | I -> eventually M next | D next); the insert
        # detour re-enters the next node's Match state
        to_match = p_match * (mm + mi) + p_delete * dm
        to_delete = p_match * md + p_delete * dd
        total = to_match + to_delete
        if total <= 0:
            raise ModelError(f"node {k}: no probability flow")
        p_match, p_delete = to_match / total, to_delete / total
        occ[k] = p_match
    return occ


def expected_domain_length(hmm: Plan7HMM, n_samples: int = 0,
                           rng: np.random.Generator | None = None) -> float:
    """Expected residues emitted by one pass through the core model.

    Analytic: sum over nodes of ``occ[k] * (1 + E[inserts after k])``
    where the insert run after node ``k`` is geometric with mean
    ``tMI / (1 - tII)`` conditioned on entering.  When ``n_samples`` > 0
    a Monte-Carlo estimate from :meth:`Plan7HMM.sample_sequence` is
    returned instead (used by the tests to validate the formula).
    """
    if n_samples > 0:
        if rng is None:
            raise ModelError("sampling needs an rng")
        return float(
            np.mean([hmm.sample_sequence(rng).size for _ in range(n_samples)])
        )
    occ = match_occupancy(hmm)
    mi = hmm.transitions[:, 1]
    ii = hmm.transitions[:, 4]
    # match emission + (geometric insert run entered with prob tMI)
    per_node = occ * (1.0 + mi / np.clip(1.0 - ii, 1e-12, None))
    return float(per_node.sum())
