"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from .engine import LintResult
from .locks import ALL_PACKAGE_RULES
from .rules import RULES_BY_ID


def _rule_catalog() -> Dict[str, object]:
    """Per-file rules plus the interprocedural package rules."""
    catalog: Dict[str, object] = {
        rid: {"title": rule.title, "rationale": rule.rationale}
        for rid, rule in RULES_BY_ID.items()
    }
    for package_rule in ALL_PACKAGE_RULES:
        catalog.setdefault(
            package_rule.id,
            {"title": package_rule.title, "rationale": package_rule.rationale},
        )
    return dict(sorted(catalog.items()))


def render_text(
    result: LintResult,
    verbose: bool = False,
    certificates: Optional[Mapping[str, object]] = None,
) -> str:
    """Human-readable report, one finding per line, gcc-style."""
    out: List[str] = []
    for f in result.findings:
        out.append(f"{f.path}:{f.line}: {f.rule} [{f.symbol}] {f.message}")
    if verbose and result.baselined:
        out.append("")
        out.append(f"baselined ({len(result.baselined)} grandfathered):")
        for f in result.baselined:
            out.append(f"  {f.path}:{f.line}: {f.rule} [{f.symbol}]")
    for stale in result.unused_baseline:
        out.append(f"warning: stale baseline entry (no longer matches): {stale}")
    for err in result.parse_errors:
        out.append(f"error: {err}")
    if certificates is not None:
        out.append("")
        status = "PROVEN" if certificates.get("proven") else "UNPROVEN"
        out.append(
            f"repro-prove: {status} — {certificates.get('sites', 0)} "
            f"obligation site(s) across "
            f"{len(certificates.get('targets', []))} module(s), "  # type: ignore[arg-type]
            f"{certificates.get('unproven', 0)} unproven"
        )
        if verbose:
            for target in certificates.get("targets", []):  # type: ignore[union-attr]
                out.append(
                    f"  {target['path']}: {target['sites']} site(s), "
                    f"{target['unproven']} unproven"
                )
    out.append("")
    rules = ", ".join(_rule_catalog())
    status = "OK" if result.ok else "FAIL"
    out.append(
        f"repro-lint: {status} — {result.files_checked} files, "
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} pragma-suppressed  [rules: {rules}]"
    )
    return "\n".join(out)


def render_json(
    result: LintResult,
    certificates: Optional[Mapping[str, object]] = None,
) -> str:
    """Machine-readable report for the CI artifact."""

    def encode(f) -> Dict[str, object]:
        return {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "symbol": f.symbol,
            "key": f.key,
            "message": f.message,
        }

    doc = {
        "tool": "repro-lint",
        "ok": result.ok,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [encode(f) for f in result.findings],
        "baselined": [encode(f) for f in result.baselined],
        "unused_baseline": result.unused_baseline,
        "parse_errors": result.parse_errors,
        "rules": _rule_catalog(),
    }
    if certificates is not None:
        doc["certificates"] = certificates
    return json.dumps(doc, indent=2) + "\n"
