"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import LintResult
from .rules import RULES_BY_ID


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report, one finding per line, gcc-style."""
    out: List[str] = []
    for f in result.findings:
        out.append(f"{f.path}:{f.line}: {f.rule} [{f.symbol}] {f.message}")
    if verbose and result.baselined:
        out.append("")
        out.append(f"baselined ({len(result.baselined)} grandfathered):")
        for f in result.baselined:
            out.append(f"  {f.path}:{f.line}: {f.rule} [{f.symbol}]")
    for stale in result.unused_baseline:
        out.append(f"warning: stale baseline entry (no longer matches): {stale}")
    for err in result.parse_errors:
        out.append(f"error: {err}")
    out.append("")
    rules = ", ".join(sorted(RULES_BY_ID))
    status = "OK" if result.ok else "FAIL"
    out.append(
        f"repro-lint: {status} — {result.files_checked} files, "
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} pragma-suppressed  [rules: {rules}]"
    )
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    """Machine-readable report for the CI artifact."""

    def encode(f) -> Dict[str, object]:
        return {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "symbol": f.symbol,
            "key": f.key,
            "message": f.message,
        }

    doc = {
        "tool": "repro-lint",
        "ok": result.ok,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [encode(f) for f in result.findings],
        "baselined": [encode(f) for f in result.baselined],
        "unused_baseline": result.unused_baseline,
        "parse_errors": result.parse_errors,
        "rules": {
            rid: {"title": rule.title, "rationale": rule.rationale}
            for rid, rule in sorted(RULES_BY_ID.items())
        },
    }
    return json.dumps(doc, indent=2) + "\n"
