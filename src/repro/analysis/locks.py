"""Interprocedural lock-order and async-readiness analysis.

The service plane (``src/repro/service/``) and the scan subsystem
(``src/repro/scan/``) follow a documented synchronization protocol:
``# guarded-by:`` attributes, one ``threading.RLock`` per component,
and no blocking work while a lock is held.  ROADMAP item 3 evolves the
run-to-completion core into a long-lived asyncio server, which turns
those conventions into hard invariants: any lock-order cycle can
deadlock the event loop's worker threads, and any syscall-blocking
region under a lock stalls every coroutine sharing it.

This module analyzes the two packages *as a whole* (package rules see
every file at once, unlike per-file :class:`~repro.analysis.rules.Rule`
checks) and enforces:

``R006``
    the lock-acquisition graph — an edge ``A -> B`` whenever lock B is
    acquired (directly or through the intra-package call graph) while
    lock A is held — must be acyclic.  Re-acquiring the *same* RLock
    is reentrant and allowed; cycles between distinct locks are
    reported with the witness acquisition chain.

``R007``
    no blocking primitive (``time.sleep``, ``os.fsync`` and the WAL
    fsync helpers, ``subprocess``/``os.system``, or ``.join()`` /
    ``.wait()`` / ``.get()`` / ``.put()`` on queue/event/thread-like
    receivers) may execute while a lock is held, either directly or
    through any intra-package call chain.

``R004`` (escape variant)
    a ``# guarded-by:`` attribute holding a mutable container must not
    escape its owner via ``return self._attr`` or a trivially aliased
    return — callers would mutate it outside the lock.  Returning a
    copy (``list(self._attr)``, ``dict(self._attr)``, ``.copy()``) is
    the sanctioned idiom and is not flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .rules import LOCK_DIRS, Finding, LockDisciplineRule, _norm, dotted_name

__all__ = [
    "PackageRule",
    "LockOrderRule",
    "AsyncReadinessRule",
    "GuardedEscapeRule",
    "ALL_PACKAGE_RULES",
    "build_lock_model",
]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

_BLOCKING_EXACT = {"time.sleep", "os.fsync", "os.system"}
_BLOCKING_BARE = {"fsync_file", "fsync_dir"}
_BLOCKING_METHODS = {"join", "wait", "get", "put", "acquire"}
_BLOCKING_RECEIVER_HINTS = ("queue", "event", "cond", "thread", "proc", "future")

_MUTABLE_FACTORIES = {"dict", "list", "set", "deque", "defaultdict", "OrderedDict"}


def _is_lock_factory(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in _LOCK_FACTORIES


def _field_lock_default(node: ast.expr) -> bool:
    """``field(default_factory=threading.RLock)`` dataclass idiom."""
    if not (isinstance(node, ast.Call) and dotted_name(node.func) is not None):
        return False
    if dotted_name(node.func).split(".")[-1] != "field":  # type: ignore[union-attr]
        return False
    for kw in node.keywords:
        if kw.arg == "default_factory":
            name = dotted_name(kw.value)
            if name is not None and name.split(".")[-1] in _LOCK_FACTORIES:
                return True
    return False


@dataclass
class _FunctionInfo:
    key: str  # "path::Class.method" / "path::func"
    path: str
    cls: Optional[str]
    name: str
    node: ast.FunctionDef
    is_property: bool = False
    # (line, lock) acquired with the locks already held at that point
    acquisitions: List[Tuple[int, str, Tuple[str, ...]]] = field(default_factory=list)
    # (line, callee display name, resolved callee key, held locks)
    calls: List[Tuple[int, str, str, Tuple[str, ...]]] = field(default_factory=list)
    # (line, primitive, held locks)
    blocking: List[Tuple[int, str, Tuple[str, ...]]] = field(default_factory=list)


@dataclass
class LockModel:
    """The package-wide lock world extracted from the ASTs."""

    functions: Dict[str, _FunctionInfo] = field(default_factory=dict)
    # class name -> set of lock attribute names
    class_locks: Dict[str, Set[str]] = field(default_factory=dict)
    # class name -> method name -> function key
    class_methods: Dict[str, Dict[str, str]] = field(default_factory=dict)
    # method name -> keys across all classes (for unique-name resolution)
    method_index: Dict[str, List[str]] = field(default_factory=dict)
    # module path -> top-level function name -> key
    module_functions: Dict[str, Dict[str, str]] = field(default_factory=dict)
    # lock graph: (held, acquired) -> witness (path, line, via)
    edges: Dict[Tuple[str, str], Tuple[str, int, str]] = field(default_factory=dict)
    # function key -> locks transitively acquired inside it
    acq_star: Dict[str, Set[str]] = field(default_factory=dict)
    # function key -> primitive -> (call chain, path, line of first hop)
    block_star: Dict[str, Dict[str, Tuple[Tuple[str, ...], str, int]]] = field(
        default_factory=dict
    )


def _blocking_primitive(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    if name in _BLOCKING_EXACT:
        return name
    parts = name.split(".")
    tail = parts[-1]
    if tail in _BLOCKING_BARE:
        return tail
    if parts[0] == "subprocess":
        return name
    if tail in _BLOCKING_METHODS and len(parts) > 1:
        receiver = ".".join(parts[:-1]).lower()
        # `self.clock.sleep` style virtual clocks are *not* receivers
        # here — only `sleep` via the exact `time.sleep` name blocks
        if any(hint in receiver for hint in _BLOCKING_RECEIVER_HINTS):
            return f"{parts[-2]}.{tail}"
    return None


class _FunctionScanner:
    """Single-function walk tracking the currently-held lock stack."""

    def __init__(self, model: LockModel, info: _FunctionInfo) -> None:
        self.model = model
        self.info = info
        self.locks = model.class_locks.get(info.cls or "", set())

    def scan(self) -> None:
        for stmt in self.info.node.body:
            self._visit(stmt, ())

    def _lock_of(self, ctx: ast.expr) -> Optional[str]:
        node = ctx
        if isinstance(node, ast.Call):
            node = node.func
        name = dotted_name(node)
        if name is None or not name.startswith("self."):
            return None
        attr = name[len("self."):]
        if "." in attr:
            return None
        if attr in self.locks:
            return f"{self.info.cls}.{attr}"
        return None

    def _resolve_call(self, call: ast.Call) -> Optional[Tuple[str, str]]:
        name = dotted_name(call.func)
        if name is None:
            return None
        parts = name.split(".")
        if parts[0] == "self" and len(parts) == 2 and self.info.cls is not None:
            key = self.model.class_methods.get(self.info.cls, {}).get(parts[1])
            if key is not None:
                return name, key
            return None
        if len(parts) == 1:
            local = self.model.module_functions.get(self.info.path, {})
            if name in local:
                return name, local[name]
            candidates = [
                fns[name]
                for fns in self.model.module_functions.values()
                if name in fns
            ]
            if len(candidates) == 1:
                return name, candidates[0]
            return None
        # obj.method(...): resolve only when the method name is defined
        # by exactly one class in the package (else too ambiguous)
        tail = parts[-1]
        keys = self.model.method_index.get(tail, [])
        if len(keys) == 1:
            return name, keys[0]
        return None

    def _property_edges(self, node: ast.expr, held: Tuple[str, ...]) -> None:
        # reading `self.p` where p is a @property of this class runs
        # the property body — a hidden call edge
        if not (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)):
            return
        if node.value.id != "self" or self.info.cls is None:
            return
        key = self.model.class_methods.get(self.info.cls, {}).get(node.attr)
        if key is None:
            return
        target = self.model.functions[key]
        if target.is_property:
            self.info.calls.append((node.lineno, f"self.{node.attr}", key, held))

    def _visit(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, ast.With):
            new_held = held
            for item in node.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self.info.acquisitions.append(
                        (item.context_expr.lineno, lock, new_held)
                    )
                    new_held = new_held + (lock,)
                else:
                    self._visit(item.context_expr, held)
            for stmt in node.body:
                self._visit(stmt, new_held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # nested callables may run later, outside the lock: scan
            # their bodies with an empty held stack
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for sub in body:
                if isinstance(sub, ast.stmt):
                    self._visit(sub, ())
                else:
                    self._visit(sub, ())
            return
        if isinstance(node, ast.Call):
            primitive = _blocking_primitive(node)
            if primitive is not None:
                self.info.blocking.append((node.lineno, primitive, held))
            else:
                resolved = self._resolve_call(node)
                if resolved is not None:
                    display, key = resolved
                    self.info.calls.append((node.lineno, display, key, held))
            for arg in node.args:
                self._visit(arg, held)
            for kw in node.keywords:
                self._visit(kw.value, held)
            if isinstance(node.func, ast.Attribute):
                self._visit(node.func.value, held)
            return
        if isinstance(node, ast.Attribute):
            self._property_edges(node, held)
            self._visit(node.value, held)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def build_lock_model(
    files: Mapping[str, Tuple[ast.Module, Sequence[str]]]
) -> LockModel:
    """Extract locks, the call graph, and acquisition edges from *files*."""
    model = LockModel()

    # pass 1: classes, lock attributes, function index
    for path in sorted(files):
        tree, _lines = files[path]
        model.module_functions.setdefault(path, {})
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                key = f"{path}::{node.name}"
                model.functions[key] = _FunctionInfo(
                    key=key, path=path, cls=None, name=node.name, node=node
                )
                model.module_functions[path][node.name] = key
            elif isinstance(node, ast.ClassDef):
                locks: Set[str] = set()
                methods: Dict[str, str] = {}
                for sub in node.body:
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        value = (
                            sub.value if isinstance(sub, (ast.Assign, ast.AnnAssign))
                            else None
                        )
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for t in targets:
                            if isinstance(t, ast.Name) and value is not None and (
                                _is_lock_factory(value) or _field_lock_default(value)
                            ):
                                locks.add(t.id)
                    if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    is_prop = any(
                        dotted_name(d) in ("property", "cached_property",
                                           "functools.cached_property")
                        for d in sub.decorator_list
                    )
                    if isinstance(sub, ast.AsyncFunctionDef):
                        continue
                    key = f"{path}::{node.name}.{sub.name}"
                    model.functions[key] = _FunctionInfo(
                        key=key, path=path, cls=node.name, name=sub.name,
                        node=sub, is_property=is_prop,
                    )
                    methods[sub.name] = key
                    model.method_index.setdefault(sub.name, []).append(key)
                    if sub.name in ("__init__", "__post_init__"):
                        for inner in ast.walk(sub):
                            if not isinstance(inner, ast.Assign):
                                continue
                            for t in inner.targets:
                                nm = dotted_name(t)
                                if (
                                    nm is not None
                                    and nm.startswith("self.")
                                    and nm.count(".") == 1
                                    and _is_lock_factory(inner.value)
                                ):
                                    locks.add(nm[len("self."):])
                model.class_locks[node.name] = locks
                model.class_methods[node.name] = methods

    # pass 2: per-function lock/call/blocking scan
    for info in model.functions.values():
        _FunctionScanner(model, info).scan()

    # pass 3: ACQ*/BLOCK* fixpoint over the call graph
    for key, info in model.functions.items():
        model.acq_star[key] = {lock for _, lock, _ in info.acquisitions}
        model.block_star[key] = {
            prim: ((info.key,), info.path, line)
            for line, prim, _held in info.blocking
        }
    changed = True
    guard = 0
    while changed and guard < 64:
        changed = False
        guard += 1
        for key, info in model.functions.items():
            for line, _display, callee, _held in info.calls:
                if callee == key:
                    continue
                callee_acq = model.acq_star.get(callee, set())
                if not callee_acq <= model.acq_star[key]:
                    model.acq_star[key] |= callee_acq
                    changed = True
                for prim, (chain, _p, _l) in model.block_star.get(callee, {}).items():
                    if prim not in model.block_star[key]:
                        model.block_star[key][prim] = (
                            (info.key,) + chain, info.path, line
                        )
                        changed = True

    # pass 4: acquisition edges (direct nesting + transitive via calls)
    for info in model.functions.values():
        for line, lock, held in info.acquisitions:
            for h in held:
                model.edges.setdefault(
                    (h, lock), (info.path, line, info.key)
                )
        for line, _display, callee, held in info.calls:
            if not held:
                continue
            for lock in model.acq_star.get(callee, set()):
                for h in held:
                    model.edges.setdefault(
                        (h, lock), (info.path, line, f"{info.key} -> {callee}")
                    )
    return model


def _strongly_connected(edges: Set[Tuple[str, str]]) -> List[List[str]]:
    """Tarjan SCC over the lock graph (self-edges excluded upstream)."""
    graph: Dict[str, List[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in graph[v]:
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            sccs.append(comp)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return [sorted(c) for c in sccs if len(c) > 1]


class PackageRule:
    """A rule that analyzes a set of files together.

    Unlike :class:`repro.analysis.rules.Rule` (one file at a time),
    ``check_package`` receives every matching file's parsed tree and
    source lines in one call, enabling interprocedural analysis.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        return _norm(path).startswith(LOCK_DIRS)

    def check_package(
        self, files: Mapping[str, Tuple[ast.Module, Sequence[str]]]
    ) -> List[Finding]:
        raise NotImplementedError


class LockOrderRule(PackageRule):
    id = "R006"
    title = "lock-order cycle (deadlock potential)"
    rationale = (
        "Two threads acquiring the same pair of locks in opposite order "
        "deadlock; the asyncio server refactor multiplies the number of "
        "concurrent acquirers, so the acquisition graph must be acyclic."
    )

    def check_package(self, files):
        model = build_lock_model(files)
        proper_edges = {
            (a, b) for (a, b) in model.edges if a != b  # RLock reentrancy OK
        }
        findings: List[Finding] = []
        for comp in _strongly_connected(proper_edges):
            witnesses = sorted(
                (a, b, model.edges[(a, b)])
                for (a, b) in proper_edges
                if a in comp and b in comp
            )
            path, line, via = witnesses[0][2]
            detail = "; ".join(
                f"{a} -> {b} (via {w[2]})" for a, b, w in witnesses
            )
            findings.append(
                Finding(
                    self.id, path, line,
                    "cycle:" + "+".join(comp),
                    f"lock-order cycle between {', '.join(comp)}: {detail} "
                    "— acquire these locks in one global order or merge them",
                )
            )
        return findings


class AsyncReadinessRule(PackageRule):
    id = "R007"
    title = "blocking call while holding a lock"
    rationale = (
        "fsync/sleep/subprocess/queue waits under a lock serialize every "
        "thread sharing it and will stall the future asyncio event loop; "
        "do the blocking work outside the critical section."
    )

    def check_package(self, files):
        model = build_lock_model(files)
        findings: List[Finding] = []
        seen: Set[str] = set()
        for info in model.functions.values():
            qual = info.key.split("::", 1)[1]
            for line, prim, held in info.blocking:
                if not held:
                    continue
                symbol = f"async:{qual}:{prim}"
                if symbol in seen:
                    continue
                seen.add(symbol)
                findings.append(
                    Finding(
                        self.id, info.path, line, symbol,
                        f"{prim} called while holding {', '.join(held)} in "
                        f"{qual}() — move the blocking call outside the lock",
                    )
                )
            for line, display, callee, held in info.calls:
                if not held:
                    continue
                for prim, (chain, _p, _l) in model.block_star.get(callee, {}).items():
                    symbol = f"async:{qual}:{display}:{prim}"
                    if symbol in seen:
                        continue
                    seen.add(symbol)
                    hops = " -> ".join(
                        k.split("::", 1)[1] for k in (info.key,) + chain
                    )
                    findings.append(
                        Finding(
                            self.id, info.path, line, symbol,
                            f"{display}() reaches {prim} while {qual}() holds "
                            f"{', '.join(held)} (chain: {hops} -> {prim}) — "
                            "move the blocking call outside the lock",
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.symbol))
        return findings


class GuardedEscapeRule(PackageRule):
    """``# guarded-by:`` mutable state must not escape via returns.

    Reported under the existing R004 lock-discipline id: an escaping
    reference lets callers mutate guarded state outside the lock, the
    exact hazard the per-file access check cannot see.
    """

    id = "R004"
    title = "guarded mutable attribute escapes its owner"
    rationale = LockDisciplineRule.rationale

    def check_package(self, files):
        findings: List[Finding] = []
        for path in sorted(files):
            tree, lines = files[path]
            for cls in tree.body:
                if not isinstance(cls, ast.ClassDef):
                    continue
                guarded = LockDisciplineRule._guarded_attrs(cls, lines)
                if not guarded:
                    continue
                mutable = self._mutable_attrs(cls)
                targets = set(guarded) & mutable
                if not targets:
                    continue
                for fn in cls.body:
                    if not isinstance(fn, ast.FunctionDef):
                        continue
                    findings.extend(
                        self._check_returns(path, cls.name, fn, targets)
                    )
        return findings

    @staticmethod
    def _mutable_attrs(cls: ast.ClassDef) -> Set[str]:
        mutable: Set[str] = set()
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                value = node.value
                if isinstance(value, ast.Call):
                    name = dotted_name(value.func)
                    if name is not None and name.split(".")[-1] == "field":
                        for kw in value.keywords:
                            if kw.arg == "default_factory":
                                fac = dotted_name(kw.value)
                                if fac is not None and (
                                    fac.split(".")[-1] in _MUTABLE_FACTORIES
                                ):
                                    mutable.add(node.target.id)
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in ("__init__", "__post_init__"):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Assign):
                    continue
                value = inner.value
                is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                    isinstance(value, ast.Call)
                    and dotted_name(value.func) is not None
                    and dotted_name(value.func).split(".")[-1]  # type: ignore[union-attr]
                    in _MUTABLE_FACTORIES
                )
                if not is_mutable:
                    continue
                for t in inner.targets:
                    nm = dotted_name(t)
                    if nm is not None and nm.startswith("self.") and nm.count(".") == 1:
                        mutable.add(nm[len("self."):])
        return mutable

    def _check_returns(
        self, path: str, cls_name: str, fn: ast.FunctionDef, targets: Set[str]
    ) -> List[Finding]:
        findings: List[Finding] = []
        aliases: Dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                src = dotted_name(node.value)
                if (
                    isinstance(tgt, ast.Name)
                    and src is not None
                    and src.startswith("self.")
                    and src[len("self."):] in targets
                ):
                    aliases[tgt.id] = src[len("self."):]
                elif isinstance(tgt, ast.Name):
                    aliases.pop(tgt.id, None)
            if not (isinstance(node, ast.Return) and node.value is not None):
                continue
            attr: Optional[str] = None
            src = dotted_name(node.value)
            if src is not None and src.startswith("self."):
                cand = src[len("self."):]
                if cand in targets:
                    attr = cand
            elif isinstance(node.value, ast.Name):
                attr = aliases.get(node.value.id)
            if attr is None:
                continue
            findings.append(
                Finding(
                    self.id, path, node.lineno,
                    f"escape:{cls_name}.{fn.name}:{attr}",
                    f"guarded mutable attribute self.{attr} escapes "
                    f"{cls_name}.{fn.name}() by reference — return a copy "
                    "(list(...)/dict(...)) so callers cannot mutate it "
                    "outside the lock",
                )
            )
        return findings


ALL_PACKAGE_RULES: Tuple[PackageRule, ...] = (
    LockOrderRule(),
    AsyncReadinessRule(),
    GuardedEscapeRule(),
)
