"""Lint engine: file discovery, pragma handling, baseline matching.

The engine walks the requested paths, parses each ``.py`` file once,
runs every applicable rule, then filters the raw findings through two
suppression layers:

* **pragmas** — a ``# repro-lint: disable=R001`` (comma-separated ids,
  or ``all``) comment on the offending line suppresses findings on
  that line only;
* **baseline** — findings whose stable key appears in the committed
  ``baseline.json`` are reported separately as grandfathered, never as
  failures.  See :mod:`repro.analysis.baseline`.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import Baseline
from .locks import ALL_PACKAGE_RULES, PackageRule
from .rules import ALL_RULES, Finding, Rule

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9, ]+)")

_SKIP_DIRS = {
    ".git", "__pycache__", ".pytest_cache", ".mypy_cache", ".ruff_cache",
    "node_modules", ".venv", "venv", ".eggs", "build", "dist",
}


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    unused_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def all_keys(self) -> Set[str]:
        return {f.key for f in self.findings} | {f.key for f in self.baselined}


def parse_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of disabled rule ids ('all' wildcard)."""
    pragmas: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(line)
        if not m:
            continue
        ids = {tok.strip().upper() for tok in m.group(1).split(",") if tok.strip()}
        pragmas[i] = {("ALL" if t == "ALL" else t) for t in ids}
    return pragmas


def iter_python_files(paths: Iterable[str], root: str) -> List[str]:
    """Expand files/directories into sorted repo-relative .py paths."""
    out: Set[str] = set()
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                out.add(os.path.relpath(absolute, root))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
            for fn in filenames:
                if fn.endswith(".py"):
                    out.add(os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(o.replace(os.sep, "/") for o in out)


def lint_file(
    relpath: str,
    source: str,
    rules: Sequence[Rule] = ALL_RULES,
) -> Tuple[List[Finding], int, Optional[str]]:
    """Lint one file; returns (kept findings, n suppressed, parse error)."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [], 0, f"{relpath}:{exc.lineno}: syntax error: {exc.msg}"
    lines = source.splitlines()
    pragmas = parse_pragmas(lines)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(tree, lines, relpath):
            disabled = pragmas.get(finding.line, set())
            if "ALL" in disabled or finding.rule in disabled:
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed, None


def run(
    paths: Iterable[str],
    root: str,
    baseline: Optional[Baseline] = None,
    rules: Sequence[Rule] = ALL_RULES,
    package_rules: Sequence[PackageRule] = ALL_PACKAGE_RULES,
) -> LintResult:
    """Lint all python files under *paths* (relative to *root*).

    Per-file *rules* run on each file in isolation; *package_rules*
    (interprocedural passes such as the lock-order analyzer) run once
    over every matching file together.  Both feed the same pragma and
    baseline suppression layers.
    """
    result = LintResult()
    baseline = baseline or Baseline()
    matched_keys: Set[str] = set()
    pkg_sources: Dict[str, str] = {}
    for relpath in iter_python_files(paths, root):
        try:
            with open(os.path.join(root, relpath), "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            result.parse_errors.append(f"{relpath}: unreadable: {exc}")
            continue
        findings, suppressed, err = lint_file(relpath, source, rules)
        result.files_checked += 1
        result.suppressed += suppressed
        if err:
            result.parse_errors.append(err)
            continue
        if any(pr.applies_to(relpath) for pr in package_rules):
            pkg_sources[relpath] = source
        for finding in findings:
            if baseline.contains(finding.key):
                matched_keys.add(finding.key)
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    if package_rules and pkg_sources:
        pkg_files: Dict[str, Tuple[ast.Module, List[str]]] = {}
        pkg_pragmas: Dict[str, Dict[int, Set[str]]] = {}
        for relpath, source in pkg_sources.items():
            # syntax errors were already reported by lint_file above
            tree = ast.parse(source, filename=relpath)
            lines = source.splitlines()
            pkg_files[relpath] = (tree, lines)
            pkg_pragmas[relpath] = parse_pragmas(lines)
        for package_rule in package_rules:
            scoped = {
                p: v for p, v in pkg_files.items()
                if package_rule.applies_to(p)
            }
            if not scoped:
                continue
            for finding in package_rule.check_package(scoped):
                disabled = pkg_pragmas.get(finding.path, {}).get(
                    finding.line, set()
                )
                if "ALL" in disabled or finding.rule in disabled:
                    result.suppressed += 1
                elif baseline.contains(finding.key):
                    matched_keys.add(finding.key)
                    result.baselined.append(finding)
                else:
                    result.findings.append(finding)
    result.unused_baseline = sorted(set(baseline.keys()) - matched_keys)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    result.baselined.sort(key=lambda f: (f.path, f.line, f.rule))
    return result
