"""Project-invariant lint rules for the repro codebase.

Each rule encodes an invariant the paper's correctness story depends on
but that the test suite only samples:

=====  ==============================================================
R001   no unseeded RNG or wall-clock reads inside deterministic paths
R002   facade discipline: external code imports only ``repro`` /
       ``repro.api`` top-level names
R003   overflow discipline: u8/i16 integer arithmetic in kernels and
       scoring must flow through the saturation guardrail helpers
R004   lock discipline: ``# guarded-by: <lock>`` attributes may only
       be touched inside a ``with self.<lock>:`` block
R005   frozen-dataclass mutation and swallowed exceptions
=====  ==============================================================

Rules are pure AST visitors: they receive a parsed module, the raw
source lines (for comment-directed rules such as R004) and the
repo-relative path, and emit :class:`Finding` objects.  Line numbers
are advisory; the stable identity of a finding — used by the pragma
and baseline machinery — is ``rule::path::symbol``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific site."""

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    @property
    def key(self) -> str:
        """Stable identity: survives unrelated edits that shift lines."""
        return f"{self.rule}::{self.path}::{self.symbol}"


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute/name chains to a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _norm(path: str) -> str:
    return path.replace("\\", "/")


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement check()."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        raise NotImplementedError

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> List[Finding]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# R001: determinism — no unseeded RNG / wall clock in deterministic paths
# ---------------------------------------------------------------------------

DETERMINISTIC_DIRS = (
    "src/repro/kernels/",
    "src/repro/cpu/",
    "src/repro/scoring/",
    "src/repro/pipeline/",
    "src/repro/gpu/",
    "src/repro/scan/",
    # the engine registry dispatches every scoring path (including the
    # cross-sequence batched kernels and the mp backend's chunk seeding):
    # a wall-clock or ambient-RNG call here would silently break the
    # bit-identical contract for every engine at once
    "src/repro/engines.py",
    # the overload plane must run on injected clocks only: admission
    # pricing and watchdog budgets come from the cost model, never from
    # wall time, so soak tests replay bit-identically
    "src/repro/service/admission.py",
    "src/repro/service/watchdog.py",
    # the WAL carries no timestamps at all: recovery must replay to the
    # same bytes regardless of when the journal was written
    "src/repro/service/wal.py",
)

# numpy module-level sampling calls that use unseeded global state
_NP_RANDOM_SAMPLERS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "poisson", "binomial", "exponential", "gumbel",
    "beta", "gamma", "bytes", "seed",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
}


class UnseededRandomnessRule(Rule):
    id = "R001"
    title = "unseeded RNG / wall clock in deterministic path"
    rationale = (
        "Filter scores must be bit-identical across engines and runs; "
        "global-state RNG and wall-clock reads break replayability."
    )

    def applies_to(self, path: str) -> bool:
        return _norm(path).startswith(DETERMINISTIC_DIRS)

    def check(self, tree, lines, path):
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.split(".")
            if (
                len(tail) >= 3
                and tail[-3] in ("np", "numpy")
                and tail[-2] == "random"
                and tail[-1] in _NP_RANDOM_SAMPLERS
            ):
                findings.append(
                    Finding(
                        self.id, path, node.lineno, name,
                        f"{name}() draws from numpy's unseeded global RNG "
                        "inside a deterministic path; thread an explicit "
                        "seeded Generator through instead",
                    )
                )
            elif name.endswith("default_rng") and self._unseeded(node):
                findings.append(
                    Finding(
                        self.id, path, node.lineno, name,
                        "default_rng() without a seed is entropy-seeded; "
                        "pass an explicit seed in deterministic paths",
                    )
                )
            elif name in _WALL_CLOCK or any(
                name.endswith("." + w) for w in ("time.time", "datetime.now")
            ):
                if name in _WALL_CLOCK:
                    findings.append(
                        Finding(
                            self.id, path, node.lineno, name,
                            f"{name}() reads the wall clock inside a "
                            "deterministic path; use a caller-supplied "
                            "clock or time.perf_counter in obs/ layers",
                        )
                    )
        return findings

    @staticmethod
    def _unseeded(call: ast.Call) -> bool:
        if call.keywords:
            return False
        if not call.args:
            return True
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None


# ---------------------------------------------------------------------------
# R002: facade discipline for code outside src/repro/
# ---------------------------------------------------------------------------

EXTERNAL_DIRS = ("examples/", "benchmarks/", "tools/", "docs/")

_ALLOWED_SUBMODULES = {"api"}


class FacadeDisciplineRule(Rule):
    id = "R002"
    title = "deep repro import outside the facade"
    rationale = (
        "External code coupling to internal module paths blocks the "
        "ROADMAP's refactor-freely goal; only repro / repro.api are "
        "stable surfaces."
    )

    def applies_to(self, path: str) -> bool:
        return _norm(path).startswith(EXTERNAL_DIRS)

    def check(self, tree, lines, path):
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._flag(findings, path, node.lineno, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import, not a repro coupling
                    continue
                self._flag(findings, path, node.lineno, node.module or "")
        return findings

    def _flag(self, findings: List[Finding], path: str, line: int,
              module: str) -> None:
        parts = module.split(".")
        if parts[0] != "repro" or len(parts) == 1:
            return
        if parts[1] in _ALLOWED_SUBMODULES:
            return
        findings.append(
            Finding(
                self.id, path, line, module,
                f"import of internal module '{module}'; external code may "
                "only use 'import repro' / 'from repro import ...' or "
                "repro.api",
            )
        )


# ---------------------------------------------------------------------------
# R003: overflow discipline in kernels/ and scoring/
# ---------------------------------------------------------------------------

OVERFLOW_DIRS = ("src/repro/kernels/", "src/repro/scoring/")

# modules that ARE the guardrail layer
_OVERFLOW_EXEMPT = ("src/repro/scoring/quantized.py",)

_SAT_BOUND_NAMES = {"MSV_BYTE_MAX", "VF_WORD_MIN", "VF_WORD_MAX"}
_SAT_BOUND_LITERALS = {0, 255, 32767, -32768}
_NARROW_DTYPES = {"np.uint8", "numpy.uint8", "np.int16", "numpy.int16"}


class OverflowDisciplineRule(Rule):
    id = "R003"
    title = "hand-rolled saturation / narrow-dtype arithmetic"
    rationale = (
        "u8/i16 fixed-point math must saturate exactly like the SSE and "
        "CUDA reference; the sat_* helpers in scoring.quantized are the "
        "single audited implementation."
    )

    def applies_to(self, path: str) -> bool:
        p = _norm(path)
        return p.startswith(OVERFLOW_DIRS) and p not in _OVERFLOW_EXEMPT

    def check(self, tree, lines, path):
        findings: List[Finding] = []
        findings.extend(self._clip_findings(tree, path))
        findings.extend(self._dtype_flow_findings(tree, path))
        return findings

    # -- sub-check (a): np.clip with saturation bounds -----------------
    def _clip_findings(self, tree, path):
        out: List[Finding] = []
        certified = self._certified_clip_lines(tree, path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name not in ("np.clip", "numpy.clip"):
                continue
            if node.lineno in certified:
                continue
            if any(self._is_sat_bound(a) for a in node.args[1:]):
                out.append(
                    Finding(
                        self.id, path, node.lineno, "np.clip",
                        "np.clip with saturation bounds re-implements the "
                        "guardrail; use sat_add_u8/sat_add_i16/max_i16 "
                        "from repro.scoring.quantized",
                    )
                )
        return out

    @staticmethod
    def _certified_clip_lines(tree, path):
        """Encode-step clips the interval prover certifies in-range.

        The quantizer construction clips (profile encode) are the
        sanctioned boundary where float scores *enter* the narrow
        systems; the prover checks their bounds semantically, so the
        syntactic ban does not apply.  Failure of the prover keeps the
        finding (fail-safe: an empty set changes nothing).
        """
        try:
            from .absint import certified_clip_lines

            return certified_clip_lines(tree, path)
        except Exception:
            return frozenset()

    @staticmethod
    def _is_sat_bound(node: ast.AST) -> bool:
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in _SAT_BOUND_NAMES:
            return True
        if isinstance(node, ast.Constant):
            return node.value in _SAT_BOUND_LITERALS
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = node.operand
            if isinstance(inner, ast.Constant):
                return -inner.value in _SAT_BOUND_LITERALS
        return False

    # -- sub-check (b): +/-/* on names tagged with narrow dtypes -------
    def _dtype_flow_findings(self, tree, path):
        out: List[Finding] = []
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tagged = self._tagged_names(fn)
            if not tagged:
                continue
            for node in ast.walk(fn):
                target = None
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    for side in (node.left, node.right):
                        nm = dotted_name(side)
                        if nm in tagged:
                            target = (nm, node.lineno)
                            break
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    nm = dotted_name(node.target)
                    if nm in tagged:
                        target = (nm, node.lineno)
                if target is not None:
                    nm, line = target
                    out.append(
                        Finding(
                            self.id, path, line, f"{fn.name}:{nm}",
                            f"raw arithmetic on narrow-dtype array '{nm}' "
                            f"in {fn.name}(); route through the sat_* "
                            "guardrail helpers (widen first if exact)",
                        )
                    )
        return out

    @staticmethod
    def _tagged_names(fn: ast.AST) -> Set[str]:
        tagged: Set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            narrow = False
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    callee = dotted_name(sub.func)
                    if callee in _NARROW_DTYPES:
                        narrow = True
                    elif callee is not None and callee.endswith(".astype"):
                        for a in sub.args:
                            if dotted_name(a) in _NARROW_DTYPES:
                                narrow = True
                    for kw in sub.keywords:
                        if kw.arg == "dtype" and (
                            dotted_name(kw.value) in _NARROW_DTYPES
                        ):
                            narrow = True
            if narrow:
                for t in node.targets:
                    nm = dotted_name(t)
                    if nm:
                        tagged.add(nm)
        return tagged


# ---------------------------------------------------------------------------
# R004: lock discipline in service/
# ---------------------------------------------------------------------------

LOCK_DIRS = ("src/repro/service/", "src/repro/scan/")

_GUARD_MARKER = "# guarded-by:"
_LOCK_EXEMPT_METHODS = {"__init__", "__post_init__", "__repr__"}


class LockDisciplineRule(Rule):
    id = "R004"
    title = "guarded attribute touched outside its lock"
    rationale = (
        "The batch service is shared across scheduler threads; an "
        "attribute annotated '# guarded-by: <lock>' is part of a "
        "documented synchronization protocol."
    )

    def applies_to(self, path: str) -> bool:
        return _norm(path).startswith(LOCK_DIRS)

    def check(self, tree, lines, path):
        findings: List[Finding] = []
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guarded = self._guarded_attrs(cls, lines)
            if not guarded:
                continue
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if fn.name in _LOCK_EXEMPT_METHODS:
                    continue
                findings.extend(
                    self._check_method(cls.name, fn, guarded, path)
                )
        return findings

    @staticmethod
    def _guarded_attrs(cls: ast.ClassDef, lines) -> dict:
        """Map attribute name -> lock name from # guarded-by comments."""
        guarded = {}
        # class-level dataclass fields
        for node in cls.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if _GUARD_MARKER not in line:
                continue
            lock = line.split(_GUARD_MARKER, 1)[1].strip()
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for t in targets:
                if isinstance(t, ast.Name):
                    guarded[t.id] = lock
        for fn in cls.body:
            if not isinstance(fn, ast.FunctionDef):
                continue
            if fn.name not in ("__init__", "__post_init__"):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
                if _GUARD_MARKER not in line:
                    continue
                lock = line.split(_GUARD_MARKER, 1)[1].strip()
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    name = dotted_name(t)
                    if name and name.startswith("self."):
                        guarded[name[len("self."):]] = lock
        return guarded

    def _check_method(self, cls_name, fn, guarded, path):
        findings: List[Finding] = []

        def visit(node, held: Tuple[str, ...]):
            if isinstance(node, ast.With):
                locks = held
                for item in node.items:
                    ctx = item.context_expr
                    nm = dotted_name(ctx)
                    if nm is None and isinstance(ctx, ast.Call):
                        nm = dotted_name(ctx.func)
                    if nm and nm.startswith("self."):
                        locks = locks + (nm[len("self."):],)
                for child in node.body:
                    visit(child, locks)
                return
            if isinstance(node, ast.Attribute):
                full = dotted_name(node)
                if full and full.startswith("self."):
                    attr = full.split(".")[1]
                    lock = guarded.get(attr)
                    if lock is not None:
                        lock_attr = lock[len("self."):] if lock.startswith(
                            "self."
                        ) else lock
                        if lock_attr not in held:
                            findings.append(
                                Finding(
                                    self.id, path, node.lineno,
                                    f"{cls_name}.{fn.name}:{attr}",
                                    f"'{attr}' is guarded-by {lock} but "
                                    f"{cls_name}.{fn.name}() touches it "
                                    f"outside 'with self.{lock_attr}:'",
                                )
                            )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.body:
            visit(stmt, ())
        # one finding per (method, attr) is enough
        seen: Set[str] = set()
        deduped = []
        for f in findings:
            if f.symbol not in seen:
                seen.add(f.symbol)
                deduped.append(f)
        return deduped


# ---------------------------------------------------------------------------
# R005: frozen-dataclass mutation and swallowed exceptions
# ---------------------------------------------------------------------------

INTERNAL_DIRS = ("src/repro/",)

_SETATTR_EXEMPT = {"__init__", "__post_init__", "__new__", "__setstate__"}


class MutationAndSwallowRule(Rule):
    id = "R005"
    title = "frozen-dataclass mutation / swallowed exception"
    rationale = (
        "Frozen dataclasses are the immutability contract of the options "
        "and profile layers; bare/swallowed excepts hide kernel and "
        "service failures the resilience layer is designed to surface."
    )

    def applies_to(self, path: str) -> bool:
        return _norm(path).startswith(INTERNAL_DIRS)

    def check(self, tree, lines, path):
        findings: List[Finding] = []
        findings.extend(self._except_findings(tree, path))
        findings.extend(self._frozen_findings(tree, path))
        findings.extend(self._setattr_findings(tree, path))
        return findings

    def _except_findings(self, tree, path):
        out: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                out.append(
                    Finding(
                        self.id, path, node.lineno, "bare-except",
                        "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                        "catch ReproError (or Exception) explicitly",
                    )
                )
                continue
            if all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            ):
                out.append(
                    Finding(
                        self.id, path, node.lineno, "swallowed-except",
                        "exception handler silently discards the error; "
                        "log it, re-raise, or record it on a counter",
                    )
                )
        return out

    def _frozen_findings(self, tree, path):
        out: List[Finding] = []
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._is_frozen(cls):
                continue
            for fn in cls.body:
                if not isinstance(fn, ast.FunctionDef):
                    continue
                if fn.name in _SETATTR_EXEMPT:
                    continue
                for node in ast.walk(fn):
                    if isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for t in targets:
                            nm = dotted_name(t)
                            if nm and nm.startswith("self."):
                                out.append(
                                    Finding(
                                        self.id, path, node.lineno,
                                        f"{cls.name}.{fn.name}:{nm}",
                                        f"assignment to {nm} inside frozen "
                                        f"dataclass {cls.name} will raise "
                                        "FrozenInstanceError at runtime",
                                    )
                                )
        return out

    def _setattr_findings(self, tree, path):
        out: List[Finding] = []

        def scan(fn_name: str, body: Iterable[ast.AST]):
            for stmt in body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    name = dotted_name(node.func)
                    if name != "object.__setattr__":
                        continue
                    if fn_name in _SETATTR_EXEMPT:
                        continue
                    out.append(
                        Finding(
                            self.id, path, node.lineno,
                            f"{fn_name}:object.__setattr__",
                            "object.__setattr__ outside __init__/"
                            "__post_init__ defeats the frozen contract",
                        )
                    )

        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in cls.body:
                if isinstance(fn, ast.FunctionDef):
                    scan(fn.name, fn.body)
        return out

    @staticmethod
    def _is_frozen(cls: ast.ClassDef) -> bool:
        for dec in cls.decorator_list:
            if isinstance(dec, ast.Call):
                if dotted_name(dec.func) in ("dataclass", "dataclasses.dataclass"):
                    for kw in dec.keywords:
                        if kw.arg == "frozen" and (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            return True
        return False


ALL_RULES: Tuple[Rule, ...] = (
    UnseededRandomnessRule(),
    FacadeDisciplineRule(),
    OverflowDisciplineRule(),
    LockDisciplineRule(),
    MutationAndSwallowRule(),
)

RULES_BY_ID = {r.id: r for r in ALL_RULES}
