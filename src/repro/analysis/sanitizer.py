"""Warp-model sanitizer: a cuda-memcheck analog for the Python warp
simulator.

The warp kernels in :mod:`repro.kernels` simulate CUDA warp-synchronous
execution: shared-memory score rows laid out for 1-transaction access
(32 consecutive bytes for the MSV u8 row, 32 consecutive i16 cells for
the Viterbi rows), double-buffered strips where each strip's dependency
cells must be loaded *before* the store that overwrites them, and
shuffle reductions whose inactive lanes must hold the reduction
neutral.  The functional tests sample these invariants; the sanitizer
checks them on every simulated access.

Enabled via ``REPRO_SANITIZE=1`` (or ``strict`` to raise on the first
violation) or per-call ``sanitize=True``; off by default and bit-exact
no-op when disabled.  Kernels attach the resulting
:class:`SanitizerReport` to ``KernelCounters.sanitizer`` so it flows
through metrics and the observability layer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..errors import SanitizerError
from ..gpu.shared_memory import transactions_for_access

ENV_FLAG = "REPRO_SANITIZE"

_MAX_EVENTS = 32


@dataclass(frozen=True)
class SanitizerReport:
    """Immutable summary of one sanitized kernel run (or a merge)."""

    accesses: int = 0
    transactions: int = 0
    bank_conflicts: int = 0
    conflict_extra: int = 0
    hazards: int = 0
    reduction_checks: int = 0
    lane_garbage: int = 0
    events: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not (self.bank_conflicts or self.hazards or self.lane_garbage)

    def merge(self, other: "SanitizerReport") -> "SanitizerReport":
        return SanitizerReport(
            accesses=self.accesses + other.accesses,
            transactions=self.transactions + other.transactions,
            bank_conflicts=self.bank_conflicts + other.bank_conflicts,
            conflict_extra=self.conflict_extra + other.conflict_extra,
            hazards=self.hazards + other.hazards,
            reduction_checks=self.reduction_checks + other.reduction_checks,
            lane_garbage=self.lane_garbage + other.lane_garbage,
            events=(self.events + other.events)[:_MAX_EVENTS],
        )

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "transactions": self.transactions,
            "bank_conflicts": self.bank_conflicts,
            "conflict_extra": self.conflict_extra,
            "hazards": self.hazards,
            "reduction_checks": self.reduction_checks,
            "lane_garbage": self.lane_garbage,
            "events": list(self.events),
        }

    def summary(self) -> str:
        status = "clean" if self.clean else "VIOLATIONS"
        return (
            f"sanitizer: {status} — {self.accesses} accesses / "
            f"{self.transactions} transactions, "
            f"{self.bank_conflicts} conflicting ({self.conflict_extra} extra), "
            f"{self.hazards} read-before-write hazards, "
            f"{self.lane_garbage}/{self.reduction_checks} "
            "reductions with inactive-lane garbage"
        )


class WarpSanitizer:
    """Records simulated shared-memory traffic for one kernel launch.

    The kernels call :meth:`begin_row` at the top of each row sweep
    (which resets the written-cell set used for hazard detection),
    :meth:`shared_load` / :meth:`shared_store` once per strip with the
    per-lane byte addresses of the access, and :meth:`check_reduction`
    before each shuffle/shared-memory reduction.  Addresses are byte
    offsets into the simulated shared-memory bank space; the bank
    model matches :func:`repro.gpu.shared_memory.transactions_for_access`.
    """

    def __init__(self, strict: bool = False, banks: int = 32):
        self.strict = strict
        self.banks = banks
        self.accesses = 0
        self.transactions = 0
        self.bank_conflicts = 0
        self.conflict_extra = 0
        self.hazards = 0
        self.reduction_checks = 0
        self.lane_garbage = 0
        self._events: List[str] = []
        self._written: Set[int] = set()
        self._row_label = ""

    # -- lifecycle -----------------------------------------------------

    def begin_row(self, label: str) -> None:
        """Start a new row sweep; resets the read-before-write tracker."""
        self._written.clear()
        self._row_label = label

    def report(self) -> SanitizerReport:
        return SanitizerReport(
            accesses=self.accesses,
            transactions=self.transactions,
            bank_conflicts=self.bank_conflicts,
            conflict_extra=self.conflict_extra,
            hazards=self.hazards,
            reduction_checks=self.reduction_checks,
            lane_garbage=self.lane_garbage,
            events=tuple(self._events[:_MAX_EVENTS]),
        )

    # -- access hooks --------------------------------------------------

    def shared_load(
        self,
        byte_addresses: Sequence[int],
        label: str,
        dependency: bool = False,
    ) -> None:
        """Record one warp-wide load.

        ``dependency=True`` marks a double-buffer dependency load: the
        cells the *next* strip needs that the current strip's store is
        about to overwrite.  Loading them after the overwrite is the
        read-before-write hazard the sanitizer exists to catch.
        """
        addrs = self._check_bank_conflict(byte_addresses, label, "load")
        if dependency:
            clobbered = [a for a in addrs if a in self._written]
            if clobbered:
                self.hazards += 1
                self._event(
                    f"read-before-write hazard at {label} "
                    f"(row {self._row_label}): {len(clobbered)} dependency "
                    f"cell(s) already overwritten this sweep, "
                    f"first byte {clobbered[0]}"
                )

    def shared_store(self, byte_addresses: Sequence[int], label: str) -> None:
        """Record one warp-wide store and mark the cells written."""
        addrs = self._check_bank_conflict(byte_addresses, label, "store")
        self._written.update(addrs)

    def check_reduction(
        self,
        lanes: np.ndarray,
        n_valid: int,
        neutral: Union[int, float],
        label: str,
    ) -> None:
        """Verify inactive lanes of a reduction input hold the neutral.

        ``lanes`` has the warp dimension trailing (…, 32).  A butterfly
        shuffle reduction mixes every lane into the result, so inactive
        lanes holding anything but the reduction neutral corrupts the
        score — the simulator analog of reading inactive-lane garbage
        through ``__shfl_xor``.
        """
        self.reduction_checks += 1
        lanes = np.asarray(lanes)
        width = lanes.shape[-1]
        if n_valid >= width:
            return
        tail = lanes[..., n_valid:]
        if not np.all(tail == neutral):
            self.lane_garbage += 1
            bad = np.asarray(tail[tail != neutral]).ravel()
            self._event(
                f"inactive-lane garbage at {label} "
                f"(row {self._row_label}): lanes >= {n_valid} should hold "
                f"neutral {neutral}, found {bad[0]!r}"
            )

    # -- internals -----------------------------------------------------

    def _check_bank_conflict(
        self, byte_addresses: Sequence[int], label: str, kind: str
    ) -> List[int]:
        addrs = [int(a) for a in np.asarray(byte_addresses).ravel()]
        self.accesses += 1
        n_tx = transactions_for_access(addrs, banks=self.banks)
        words = {a // 4 for a in addrs}
        distinct_banks = len({w % self.banks for w in words})
        self.transactions += n_tx
        extra = n_tx - distinct_banks
        if extra > 0:
            self.bank_conflicts += 1
            self.conflict_extra += extra
            self._event(
                f"bank conflict at {label} (row {self._row_label}, {kind}): "
                f"{n_tx} transactions for {distinct_banks} banks "
                f"(+{extra} replays)"
            )
        return addrs

    def _event(self, message: str) -> None:
        if len(self._events) < _MAX_EVENTS:
            self._events.append(message)
        if self.strict:
            raise SanitizerError(message)


def env_enabled() -> Optional[str]:
    """Return the REPRO_SANITIZE mode string, or None when off."""
    raw = os.environ.get(ENV_FLAG, "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return None
    return raw


def resolve_sanitizer(
    sanitize: Union[None, bool, WarpSanitizer]
) -> Optional[WarpSanitizer]:
    """Resolve a kernel's ``sanitize`` argument to an armed sanitizer.

    ``None`` defers to the ``REPRO_SANITIZE`` environment variable, so
    the sanitizer reaches kernels launched through the service/executor
    path without widening any interface.  ``True`` arms a fresh
    sanitizer; a :class:`WarpSanitizer` instance is used as-is (the
    caller wants the accumulated report).
    """
    if isinstance(sanitize, WarpSanitizer):
        return sanitize
    if sanitize is True:
        return WarpSanitizer()
    if sanitize is False:
        return None
    mode = env_enabled()
    if mode is None:
        return None
    return WarpSanitizer(strict=(mode == "strict"))
