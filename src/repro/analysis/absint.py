"""Interval abstract interpretation for the quantized filter kernels.

``repro-lint --prove`` runs this module over the kernel and scoring
sources and emits, per function, a *proof certificate*: the list of
every u8/i16 **obligation site** (arithmetic on a native narrow array,
a store into a narrow or system-tagged carrier, a narrowing cast) with
the abstract interval the interpreter derived for it and a status:

``proven``
    the interval is contained in the dtype range - the operation can
    never wrap;
``by_helper``
    the value flows through one of the audited saturation helpers
    (``sat_add_u8`` / ``sat_add_i16`` / ``clip_i16`` / ``floor_i16`` /
    ``np.clip`` with constant saturation bounds), whose summaries clamp
    the interval by construction;
``by_repair``
    the native-u8 wraparound-repair idiom of the batched MSV kernel
    (compare against the exact wrap threshold *before* the wrapping
    add/sub, overwrite the wrapped cells right after) was recognized
    and its threshold algebra checked symbolically;
``unproven``
    none of the above - the interval can escape the dtype range.

The abstract domain is non-relational: an :class:`AbsVal` is a numeric
interval ``[lo, hi]`` (bounds may be infinite) plus a *native* narrow
dtype tag (the array really is uint8/int16 in memory - wrap risk), a
*system* tag (a wide int32/int64 carrier that semantically holds u8 or
i16 scores - the invariant the certificate proves), and for profile
objects the set of possible classes.  Seeds come from the quantizer
encode steps: every byte cost is clipped into ``[0, 255]`` and every
word score into ``[-32768, 32767]`` at profile-construction time (with
transition/special log-prob scores additionally non-positive), so
``PROFILE_SEEDS`` below is the machine-checked restatement of
:mod:`repro.scoring.msv_profile` / :mod:`repro.scoring.vit_profile`.

Documented assumptions (see docs/static_analysis.md):

* ``np.empty`` carriers are written before they are read (they are
  tagged with the empty interval);
* cross-module helper summaries (``parallel_lazy_f`` mutating its
  first argument into i16 range, ``stripe_array``/``shfl_up`` hulling
  their fill value) match the helpers' own verified behaviour;
* inlined intra-module callees are additionally analyzed standalone
  with parameter seeds that subsume every actual call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .rules import Finding, Rule, dotted_name

__all__ = [
    "AbsVal",
    "Site",
    "FunctionProof",
    "ModuleProof",
    "PROVE_TARGETS",
    "ENCODE_MODULES",
    "IntervalProverRule",
    "analyze_module",
    "analyze_source",
    "certified_clip_lines",
    "certificate_doc",
]

INF = float("inf")

#: Inclusive value ranges of the modelled fixed-point systems.
DTYPE_RANGES: Dict[str, Tuple[float, float]] = {
    "u8": (0.0, 255.0),
    "i16": (-32768.0, 32767.0),
    "i32": (float(-(2**31)), float(2**31 - 1)),
    "i64": (float(-(2**63)), float(2**63 - 1)),
}

#: Modules the prover certifies (kernels, striped CPU baselines, and
#: the construction-time quantizer encode steps that define the seeds).
PROVE_TARGETS: Tuple[str, ...] = (
    "src/repro/kernels/msv_warp.py",
    "src/repro/kernels/viterbi_warp.py",
    "src/repro/kernels/batched.py",
    "src/repro/kernels/prefix_scan.py",
    "src/repro/cpu/striped.py",
    "src/repro/cpu/msv_striped.py",
    "src/repro/cpu/viterbi_striped.py",
    "src/repro/scoring/msv_profile.py",
    "src/repro/scoring/vit_profile.py",
)

#: Encode modules whose constant-bound np.clip calls the prover
#: certifies (discharging the two historical R003 baseline entries).
ENCODE_MODULES: Tuple[str, ...] = (
    "src/repro/scoring/msv_profile.py",
    "src/repro/scoring/vit_profile.py",
)

#: Default semantic system per target module, used for functions whose
#: profile parameter annotation does not already pin one.
_MODULE_SYSTEMS: Dict[str, Optional[str]] = {
    "src/repro/kernels/msv_warp.py": "u8",
    "src/repro/kernels/viterbi_warp.py": "i16",
    "src/repro/kernels/batched.py": None,
    "src/repro/kernels/prefix_scan.py": "i16",
    "src/repro/cpu/striped.py": None,
    "src/repro/cpu/msv_striped.py": "u8",
    "src/repro/cpu/viterbi_striped.py": "i16",
    "src/repro/scoring/msv_profile.py": "u8",
    "src/repro/scoring/vit_profile.py": "i16",
}

_SYSTEM_OF_PROFILE = {
    "MSVByteProfile": "u8",
    "ViterbiWordProfile": "i16",
    "StripedViterbiProfile": "i16",
}

#: Quantization constants resolvable by (final) name.
KNOWN_CONSTANTS: Dict[str, int] = {
    "MSV_BYTE_MAX": 255,
    "VF_WORD_MIN": -32768,
    "VF_WORD_MAX": 32767,
    "MSV_BASE": 190,
    "VF_BASE": 12000,
    "U8_ZERO": 0,
    "I16_NEG_INF": -32768,
    "WARP_SIZE": 32,
    "SCAN_STEPS": 5,
    "SSE_BYTE_LANES": 16,
    "SSE_WORD_LANES": 8,
}

_CAST_NAMES = {"uint8": "u8", "int16": "i16", "int32": "i32", "int64": "i64"}


@dataclass(frozen=True)
class AbsVal:
    """Abstract value: interval + dtype/system/object tags.

    ``lo > hi`` encodes the empty interval (e.g. an ``np.empty``
    carrier before its first store).
    """

    lo: float = -INF
    hi: float = INF
    kind: str = "num"  # num | bool | float | obj | top
    native: Optional[str] = None  # the array really is u8/i16 in memory
    tagged: Optional[str] = None  # wide carrier semantically holding u8/i16
    obj_types: Tuple[str, ...] = ()

    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi

    def in_range(self, system: str) -> bool:
        if self.is_bottom:
            return True
        rlo, rhi = DTYPE_RANGES[system]
        return self.lo >= rlo and self.hi <= rhi


TOP = AbsVal()
TOP_FLOAT = AbsVal(kind="float")
BOOL = AbsVal(0.0, 1.0, kind="bool")
BOTTOM = AbsVal(INF, -INF)


def mk(lo: float, hi: float, **kw: object) -> AbsVal:
    return AbsVal(lo=float(lo), hi=float(hi), **kw)  # type: ignore[arg-type]


def const_val(v: object) -> AbsVal:
    if isinstance(v, bool):
        return BOOL
    if isinstance(v, int):
        return mk(v, v)
    if isinstance(v, float):
        if v != v or v in (INF, -INF):
            return TOP_FLOAT
        return mk(v, v, kind="float")
    return TOP


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    return AbsVal(
        lo=min(a.lo, b.lo),
        hi=max(a.hi, b.hi),
        kind=a.kind if a.kind == b.kind else "num",
        native=a.native if a.native == b.native else None,
        tagged=a.tagged if a.tagged == b.tagged else None,
        obj_types=tuple(sorted(set(a.obj_types) | set(b.obj_types))),
    )


def _add(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return mk(a.lo + b.lo, a.hi + b.hi)


def _sub(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return mk(a.lo - b.hi, a.hi - b.lo)


def _mul(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom or b.is_bottom:
        return BOTTOM

    def prod(x: float, y: float) -> float:
        if x == 0.0 or y == 0.0:  # 0 * inf -> 0 under our semantics
            return 0.0
        return x * y

    cands = [prod(a.lo, b.lo), prod(a.lo, b.hi), prod(a.hi, b.lo), prod(a.hi, b.hi)]
    return mk(min(cands), max(cands))


def _max_iv(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    out = mk(max(a.lo, b.lo), max(a.hi, b.hi))
    if a.native is not None and a.native == b.native:
        out = replace(out, native=a.native)
    return out


def _min_iv(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    return mk(min(a.lo, b.lo), min(a.hi, b.hi))


def _clip_iv(a: AbsVal, lo: float, hi: float) -> AbsVal:
    """Interval of ``np.clip(a, lo, hi)`` with constant bounds."""
    if a.is_bottom:
        return BOTTOM
    return mk(min(max(a.lo, lo), hi), min(max(a.hi, lo), hi))


# ---------------------------------------------------------------------------
# seeds: the quantizer encode steps, restated as intervals
# ---------------------------------------------------------------------------

_U8 = {"lo": 0.0, "hi": 255.0}
_I16 = {"lo": -32768.0, "hi": 32767.0}
_NEG_I16 = {"lo": -32768.0, "hi": 0.0}

#: attr -> AbsVal per profile class.  Every array/int here is produced
#: by _unbiased_byteify / _wordify, which clip into the system range at
#: construction time; transition and special scores are quantized
#: log-probabilities and therefore non-positive.
PROFILE_SEEDS: Dict[str, Dict[str, AbsVal]] = {
    "MSVByteProfile": {
        "M": mk(1, INF),
        "L": mk(0, INF),
        "rbv": mk(**_U8),
        "tbm": mk(**_U8),
        "tec": mk(**_U8),
        "tjb": mk(**_U8),
        "bias": mk(**_U8),
        "base": mk(190, 190),
        "scale": TOP_FLOAT,
        "overflow_threshold": mk(**_U8),
        "init_xB": mk(**_U8),
        "emission_row": mk(**_U8),
        "final_score_nats": TOP_FLOAT,
        "bits_from_nats": TOP_FLOAT,
    },
    "ViterbiWordProfile": {
        "M": mk(1, INF),
        "L": mk(0, INF),
        "rwv": mk(**_I16),
        "tbm": mk(**_NEG_I16),
        "enter_mm": mk(**_NEG_I16),
        "enter_im": mk(**_NEG_I16),
        "enter_dm": mk(**_NEG_I16),
        "tmi": mk(**_NEG_I16),
        "tii": mk(**_NEG_I16),
        "tmd": mk(**_NEG_I16),
        "tdd": mk(**_NEG_I16),
        "xE_move": mk(**_NEG_I16),
        "xE_loop": mk(**_NEG_I16),
        "xNJ_move": mk(**_NEG_I16),
        "base": mk(12000, 12000),
        "scale": TOP_FLOAT,
        "overflow_threshold": mk(32767, 32767),
        "init_xB": mk(-20768, 12000),
        "emission_row": mk(**_I16),
        "final_score_nats": TOP_FLOAT,
        "bits_from_nats": TOP_FLOAT,
    },
    "StripedViterbiProfile": {
        "base": AbsVal(kind="obj", obj_types=("ViterbiWordProfile",)),
        "lanes": mk(2, INF),
        "Q": mk(1, INF),
        "rwv": mk(**_I16),
        "enter_mm": mk(**_NEG_I16),
        "enter_im": mk(**_NEG_I16),
        "enter_dm": mk(**_NEG_I16),
        "tmi": mk(**_NEG_I16),
        "tii": mk(**_NEG_I16),
        "tmd": mk(**_NEG_I16),
        "tdd": mk(**_NEG_I16),
    },
}

_SCAN_FLOOR = float(-(1 << 40))

#: Extra parameter seeds for intra-module helpers that are *also*
#: inlined at their call sites; the seeds subsume every actual
#: argument (checked by the callers' own certificates).
PARAM_SEEDS: Dict[Tuple[str, str, str], AbsVal] = {
    ("prefix_scan.py", "_window_scan", "s"): mk(_SCAN_FLOOR, 32767),
    ("prefix_scan.py", "_window_scan", "t"): mk(_SCAN_FLOOR, 0),
    ("prefix_scan.py", "_window_scan", "carry"): mk(_SCAN_FLOOR, 32767),
    ("prefix_scan.py", "prefix_scan_d_chain", "D"): mk(-32768, 32767, tagged="i16"),
    ("prefix_scan.py", "prefix_scan_d_chain", "tdd_enter"): mk(-32768, 0),
    ("viterbi_striped.py", "_lazy_f", "DMX"): mk(-32768, 32767, tagged="i16"),
    ("viterbi_striped.py", "_lazy_f", "dcv"): mk(-32768, 32767),
    ("viterbi_striped.py", "_lazy_f", "tdd"): mk(-32768, 0),
    ("msv_striped.py", "msv_score_sequence_striped", "striped_rbv"): mk(0, 255),
}


# ---------------------------------------------------------------------------
# certificates
# ---------------------------------------------------------------------------


@dataclass
class Site:
    """One obligation (or helper/clip discharge) in a function."""

    line: int
    function: str
    kind: str  # arith | store | cast | helper | clip | repair
    detail: str
    system: Optional[str]
    lo: float
    hi: float
    status: str  # proven | by_helper | by_repair | unproven

    def to_doc(self) -> Dict[str, object]:
        def bound(x: float) -> object:
            if x == INF:
                return "inf"
            if x == -INF:
                return "-inf"
            return int(x)

        return {
            "line": self.line,
            "function": self.function,
            "kind": self.kind,
            "detail": self.detail,
            "system": self.system,
            "interval": [bound(self.lo), bound(self.hi)],
            "status": self.status,
        }


@dataclass
class FunctionProof:
    name: str
    sites: List[Site] = field(default_factory=list)

    @property
    def unproven(self) -> List[Site]:
        return [s for s in self.sites if s.status == "unproven"]

    @property
    def proven(self) -> bool:
        return not self.unproven

    def to_doc(self) -> Dict[str, object]:
        return {
            "function": self.name,
            "proven": self.proven,
            "sites": [s.to_doc() for s in self.sites],
        }


@dataclass
class ModuleProof:
    path: str
    functions: List[FunctionProof] = field(default_factory=list)

    @property
    def certified_clip_lines(self) -> frozenset:
        lines = set()
        for fn in self.functions:
            for s in fn.sites:
                if s.kind == "clip" and s.status != "unproven":
                    lines.add(s.line)
        return frozenset(lines)

    @property
    def unproven(self) -> List[Site]:
        return [s for fn in self.functions for s in fn.unproven]

    def to_doc(self) -> Dict[str, object]:
        n_sites = sum(len(fn.sites) for fn in self.functions)
        return {
            "path": self.path,
            "proven": not self.unproven,
            "sites": n_sites,
            "unproven": len(self.unproven),
            "functions": [fn.to_doc() for fn in self.functions],
        }


def _short(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= 60 else text[:57] + "..."


# ---------------------------------------------------------------------------
# symbolic origins (for the wraparound-repair threshold algebra)
# ---------------------------------------------------------------------------

Origin = Tuple[object, ...]


def _origin(node: ast.AST, env: Dict[str, Origin]) -> Optional[Origin]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return ("const", node.value)
    name = dotted_name(node)
    if name is not None:
        tail = name.split(".")[-1]
        if tail in KNOWN_CONSTANTS:
            return ("const", KNOWN_CONSTANTS[tail])
        if isinstance(node, ast.Name):
            return env.get(name)
        return ("sym", name)
    if isinstance(node, ast.Call) and len(node.args) == 1:
        fn = dotted_name(node.func)
        if fn is not None and fn.split(".")[-1] in _CAST_NAMES:
            return _origin(node.args[0], env)  # casts are origin-transparent
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _origin(node.left, env)
        right = _origin(node.right, env)
        if left is not None and right is not None:
            op = "add" if isinstance(node.op, ast.Add) else "sub"
            return (op, left, right)
    return None


def _origin_eq(a: Optional[Origin], b: Optional[Origin]) -> bool:
    return a is not None and b is not None and a == b


# ---------------------------------------------------------------------------
# module context
# ---------------------------------------------------------------------------


@dataclass
class _ModuleCtx:
    path: str
    system: Optional[str]
    functions: Dict[str, ast.FunctionDef]
    module_env: Dict[str, AbsVal]
    basename: str


def _annotation_names(node: Optional[ast.AST]) -> List[str]:
    if node is None:
        return []
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            out.extend(
                tok for tok in sub.value.replace("|", " ").split() if tok.isidentifier()
            )
    return out


def _fn_system(fn: ast.FunctionDef, module_system: Optional[str]) -> Optional[str]:
    for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
        for name in _annotation_names(arg.annotation):
            if name in _SYSTEM_OF_PROFILE:
                return _SYSTEM_OF_PROFILE[name]
    return module_system


def _param_seed(ctx: _ModuleCtx, fn_name: str, arg: ast.arg) -> AbsVal:
    seeded = PARAM_SEEDS.get((ctx.basename, fn_name, arg.arg))
    if seeded is not None:
        return seeded
    classes = tuple(
        n for n in _annotation_names(arg.annotation) if n in PROFILE_SEEDS
    )
    if classes:
        return AbsVal(kind="obj", obj_types=classes)
    return TOP


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------

_SAT_HELPERS = {"sat_add_u8", "sat_sub_u8", "sat_add_i16", "clip_i16", "floor_i16"}

_MAX_LOOP_ITER = 10
_WIDEN_AFTER = 4
_MAX_INLINE_DEPTH = 3


class _Interp:
    def __init__(
        self,
        ctx: _ModuleCtx,
        fn: ast.FunctionDef,
        seeds: Dict[str, AbsVal],
        depth: int = 0,
        record: bool = True,
    ) -> None:
        self.ctx = ctx
        self.fn = fn
        self.system = _fn_system(fn, ctx.system)
        self.env: Dict[str, AbsVal] = dict(ctx.module_env)
        self.env.update(seeds)
        self.alias: Dict[str, str] = {}
        self.origins: Dict[str, Origin] = {}
        self.sites: List[Site] = []
        self.ret: AbsVal = BOTTOM
        self.depth = depth
        self._suppress = 0 if record else 1
        self.local_funcs: Dict[str, ast.FunctionDef] = {}
        self.local_lambdas: Dict[str, ast.Lambda] = {}
        # name -> the Compare node it was last assigned from; feeds the
        # wraparound-repair matcher.  Invalidated when a compared
        # variable is rewritten.
        self._mask_compares: Dict[str, ast.Compare] = {}

    # -- plumbing -----------------------------------------------------------

    def _root(self, name: str) -> str:
        seen = set()
        while name in self.alias and name not in seen:
            seen.add(name)
            name = self.alias[name]
        return name

    def _site(self, line: int, kind: str, detail: str, val: AbsVal, status: str) -> None:
        if self._suppress:
            return
        self.sites.append(
            Site(line, self.fn.name, kind, detail, self.system, val.lo, val.hi, status)
        )

    def _resolve_name(self, name: str) -> AbsVal:
        if name in self.env:
            return self.env[name]
        if name in KNOWN_CONSTANTS:
            return const_val(KNOWN_CONSTANTS[name])
        if name in ("True", "False"):
            return BOOL
        return TOP

    # -- statements ---------------------------------------------------------

    def run(self) -> None:
        self.exec_block(self.fn.body)

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        i = 0
        while i < len(stmts):
            stmt = stmts[i]
            if isinstance(stmt, ast.AugAssign) and self._try_repair(stmts, i):
                i += 2  # the AugAssign and its repair store, handled atomically
                continue
            self.exec_stmt(stmt)
            i += 1

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.exec_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                self._assign_name(stmt.target.id, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.exec_augassign(stmt)
        elif isinstance(stmt, ast.Expr):
            self.exec_expr_stmt(stmt)
        elif isinstance(stmt, ast.If):
            self.exec_if(stmt)
        elif isinstance(stmt, (ast.For, ast.While)):
            self.exec_loop(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.ret = join(self.ret, self.eval(stmt.value))
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.FunctionDef):
            self.local_funcs[stmt.name] = stmt
        elif isinstance(stmt, (ast.Raise, ast.Pass, ast.Break, ast.Continue)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, (ast.Assert, ast.Delete, ast.Global, ast.Nonlocal)):
            pass
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.ClassDef)):
            pass

    def exec_assign(self, stmt: ast.Assign) -> None:
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Lambda)
        ):
            self.local_lambdas[stmt.targets[0].id] = stmt.value
            return
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Tuple)
            and isinstance(stmt.value, ast.Tuple)
            and len(stmt.targets[0].elts) == len(stmt.value.elts)
        ):
            vals = [(v, self.eval(v)) for v in stmt.value.elts]
            for tgt, (vnode, val) in zip(stmt.targets[0].elts, vals):
                self.assign_target(tgt, val, vnode)
            return
        val = self.eval(stmt.value)
        for tgt in stmt.targets:
            self.assign_target(tgt, val, stmt.value)

    def assign_target(self, tgt: ast.expr, val: AbsVal, vnode: ast.expr) -> None:
        if isinstance(tgt, ast.Name):
            self._assign_name(tgt.id, val, vnode)
        elif isinstance(tgt, ast.Tuple):
            for el in tgt.elts:
                self.assign_target(el, TOP, vnode)
        elif isinstance(tgt, ast.Subscript):
            self.store_subscript(tgt, val, vnode)
        elif isinstance(tgt, ast.Starred):
            self.assign_target(tgt.value, TOP, vnode)
        # attribute stores (counters.x = ...) carry no proof obligations

    def _assign_name(self, name: str, val: AbsVal, vnode: ast.expr) -> None:
        self.alias.pop(name, None)
        # a plain slice of another array is a view: stores through it
        # must reach the root variable
        if isinstance(vnode, ast.Subscript):
            base = vnode.value
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name is not None and not isinstance(vnode.slice, ast.Constant):
                self.alias[name] = self._root(base_name)
        self.env[name] = val
        origin = _origin(vnode, self.origins)
        if origin is not None:
            self.origins[name] = origin
        else:
            self.origins.pop(name, None)
        if isinstance(vnode, ast.Compare):
            self._mask_compares[name] = vnode
        else:
            self._mask_compares.pop(name, None)
        stale = [
            m
            for m, cmp_node in self._mask_compares.items()
            if m != name
            and any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(cmp_node)
            )
        ]
        for m in stale:
            del self._mask_compares[m]

    def store_subscript(self, tgt: ast.Subscript, val: AbsVal, vnode: ast.expr) -> None:
        base = tgt.value
        base_name = dotted_name(base)
        if base_name is None or "." in base_name:
            return  # attribute-rooted stores carry no tracked array
        root = self._root(base_name)
        arr = self.env.get(root, TOP)
        system = arr.native or arr.tagged
        if system in ("u8", "i16"):
            status = "proven" if val.in_range(system) else "unproven"
            self._site(tgt.lineno, "store", _short(tgt), val, status)
            if status == "unproven":
                rlo, rhi = DTYPE_RANGES[system]
                val = mk(rlo, rhi, native=arr.native, tagged=arr.tagged)
        joined = join(arr, replace(val, native=arr.native, tagged=arr.tagged))
        self.env[root] = replace(joined, native=arr.native, tagged=arr.tagged)
        if base_name != root:
            self.env[base_name] = self.env[root]

    def exec_augassign(self, stmt: ast.AugAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            self.eval(stmt.value)
            return
        name = stmt.target.id
        cur = self.env.get(name, TOP)
        rhs = self.eval(stmt.value)
        if isinstance(stmt.op, ast.Add):
            out = _add(cur, rhs)
        elif isinstance(stmt.op, ast.Sub):
            out = _sub(cur, rhs)
        elif isinstance(stmt.op, ast.Mult):
            out = _mul(cur, rhs)
        else:
            out = TOP
        out = replace(out, native=cur.native, tagged=cur.tagged)
        if cur.native in ("u8", "i16") and isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult)):
            # un-repaired in-place arithmetic on a real narrow array
            status = "proven" if out.in_range(cur.native) else "unproven"
            self._site(stmt.lineno, "arith", _short(stmt), out, status)
            if status == "unproven":
                rlo, rhi = DTYPE_RANGES[cur.native]
                out = mk(rlo, rhi, native=cur.native)
        root = self._root(name)
        if root != name:
            base = self.env.get(root, TOP)
            self.env[root] = replace(join(base, out), native=base.native, tagged=base.tagged)
        self.env[name] = out
        self.origins.pop(name, None)

    def exec_expr_stmt(self, stmt: ast.Expr) -> None:
        val = self.eval(stmt.value)
        node = stmt.value
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    self._assign_name(kw.value.id, val, node)

    # -- branches and loops --------------------------------------------------

    def exec_if(self, stmt: ast.If) -> None:
        self.eval(stmt.test)
        refined = self._isinstance_refinement(stmt.test)
        before_env = dict(self.env)
        before_alias = dict(self.alias)
        before_origins = dict(self.origins)
        if refined is not None:
            name, classes = refined
            self.env[name] = AbsVal(kind="obj", obj_types=classes)
        self.exec_block(stmt.body)
        then_env, then_alias, then_origins = self.env, self.alias, self.origins
        self.env = before_env
        self.alias = before_alias
        self.origins = dict(before_origins)
        if refined is not None:
            name, classes = refined
            cur = before_env.get(name, TOP)
            rest = tuple(t for t in cur.obj_types if t not in classes)
            if cur.kind == "obj" and rest:
                self.env[name] = AbsVal(kind="obj", obj_types=rest)
        self.exec_block(stmt.orelse)
        merged: Dict[str, AbsVal] = {}
        for key in set(then_env) | set(self.env):
            merged[key] = join(then_env.get(key, BOTTOM), self.env.get(key, BOTTOM))
        self.env = merged
        self.alias = {k: v for k, v in then_alias.items() if self.alias.get(k) == v}
        self.origins = {
            k: v for k, v in then_origins.items() if self.origins.get(k) == v
        }

    def _isinstance_refinement(
        self, test: ast.expr
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        if not (isinstance(test, ast.Call) and dotted_name(test.func) == "isinstance"):
            return None
        if len(test.args) != 2 or not isinstance(test.args[0], ast.Name):
            return None
        cls_node = test.args[1]
        names = []
        for el in cls_node.elts if isinstance(cls_node, ast.Tuple) else [cls_node]:
            nm = dotted_name(el)
            if nm is not None:
                names.append(nm.split(".")[-1])
        known = tuple(n for n in names if n in PROFILE_SEEDS)
        if not known:
            return None
        return test.args[0].id, known

    def exec_loop(self, stmt: ast.stmt) -> None:
        assert isinstance(stmt, (ast.For, ast.While))
        if isinstance(stmt, ast.For):
            self._bind_loop_target(stmt.target, self.eval(stmt.iter))
        else:
            self.eval(stmt.test)
        self._suppress += 1
        baseline: Dict[str, AbsVal] = {}
        try:
            for iteration in range(_MAX_LOOP_ITER):
                snapshot = dict(self.env)
                self.exec_block(stmt.body)
                changed = False
                for key in set(snapshot) | set(self.env):
                    old = snapshot.get(key, BOTTOM)
                    new = join(old, self.env.get(key, BOTTOM))
                    if iteration >= _WIDEN_AFTER and key in baseline:
                        ref = baseline[key]
                        if not new.is_bottom and not ref.is_bottom:
                            lo = -INF if new.lo < ref.lo else new.lo
                            hi = INF if new.hi > ref.hi else new.hi
                            new = replace(new, lo=lo, hi=hi)
                    if (new.lo, new.hi, new.native, new.tagged) != (
                        old.lo, old.hi, old.native, old.tagged,
                    ):
                        changed = True
                    self.env[key] = new
                if iteration == _WIDEN_AFTER - 1:
                    baseline = dict(self.env)
                if not changed:
                    break
        finally:
            self._suppress -= 1
        # one recording pass over the stable environment
        self.exec_block(stmt.body)
        post = dict(self.env)
        for key in post:
            self.env[key] = join(post[key], self.env.get(key, BOTTOM))
        self.exec_block(stmt.orelse)

    def _bind_loop_target(self, target: ast.expr, iterable: AbsVal) -> None:
        if isinstance(target, ast.Name):
            elem = iterable if iterable.kind == "num" else TOP
            self._assign_name(target.id, replace(elem, native=None, tagged=None)
                              if not elem.is_bottom else TOP, target)
        elif isinstance(target, ast.Tuple):
            for el in target.elts:
                self._bind_loop_target(el, TOP)

    # -- wraparound-repair recognition ---------------------------------------

    def _try_repair(self, stmts: Sequence[ast.stmt], i: int) -> bool:
        aug = stmts[i]
        assert isinstance(aug, ast.AugAssign)
        if not isinstance(aug.target, ast.Name):
            return False
        name = aug.target.id
        cur = self.env.get(name, TOP)
        if cur.native not in ("u8", "i16"):
            return False
        rhs = self.eval_quiet(aug.value)
        exact = _add(cur, rhs) if isinstance(aug.op, ast.Add) else _sub(cur, rhs)
        if exact.in_range(cur.native):
            return False  # no wrap possible; normal AugAssign handling
        if i + 1 >= len(stmts):
            return False
        repair = stmts[i + 1]
        matched = False
        if isinstance(aug.op, ast.Add):
            matched = self._match_repair_add(aug, repair, name)
        elif isinstance(aug.op, ast.Sub):
            matched = self._match_repair_sub(aug, repair, name)
        if not matched:
            return False
        rlo, rhi = DTYPE_RANGES[cur.native]
        out = mk(rlo, rhi, native=cur.native)
        self._site(aug.lineno, "repair", _short(aug), out, "by_repair")
        self.env[name] = out
        root = self._root(name)
        if root != name:
            base = self.env.get(root, TOP)
            self.env[root] = replace(join(base, out), native=base.native, tagged=base.tagged)
        return True

    def _repair_store(self, stmt: ast.stmt, name: str) -> Optional[Tuple[str, float]]:
        """``name[mask] = value`` -> (mask, value) if it has that shape."""
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            return None
        tgt = stmt.targets[0]
        if not (
            isinstance(tgt, ast.Subscript)
            and isinstance(tgt.value, ast.Name)
            and tgt.value.id == name
            and isinstance(tgt.slice, ast.Name)
        ):
            return None
        origin = _origin(stmt.value, self.origins)
        if origin is None or origin[0] != "const":
            return None
        return tgt.slice.id, float(origin[1])  # type: ignore[arg-type]

    def _match_repair_add(self, aug: ast.AugAssign, repair: ast.stmt, name: str) -> bool:
        cur = self.env.get(name, TOP)
        assert cur.native is not None
        cap = DTYPE_RANGES[cur.native][1]
        stored = self._repair_store(repair, name)
        if stored is None or stored[1] != cap:
            return False
        mask = stored[0]
        cmp_node = self._mask_compares.get(mask)
        if cmp_node is None:
            return False
        # mask must be  name >= threshold  with threshold == cap - addend
        if not (
            isinstance(cmp_node.left, ast.Name)
            and cmp_node.left.id == name
            and len(cmp_node.ops) == 1
            and isinstance(cmp_node.ops[0], ast.GtE)
            and len(cmp_node.comparators) == 1
        ):
            return False
        thr = _origin(cmp_node.comparators[0], self.origins)
        addend = _origin(aug.value, self.origins)
        if thr is None or addend is None:
            return False
        if thr[0] == "const" and addend[0] == "const":
            return float(thr[1]) == cap - float(addend[1])  # type: ignore[arg-type]
        return _origin_eq(thr, ("sub", ("const", int(cap)), addend))

    def _match_repair_sub(self, aug: ast.AugAssign, repair: ast.stmt, name: str) -> bool:
        cur = self.env.get(name, TOP)
        assert cur.native is not None
        floor = DTYPE_RANGES[cur.native][0]
        stored = self._repair_store(repair, name)
        if stored is None or stored[1] != floor:
            return False
        mask = stored[0]
        cmp_node = self._mask_compares.get(mask)
        if cmp_node is None:
            return False
        # mask must be  subtrahend > name  for the same subtrahend
        if not (
            isinstance(aug.value, ast.Name)
            and isinstance(cmp_node.left, ast.Name)
            and cmp_node.left.id == aug.value.id
            and len(cmp_node.ops) == 1
            and isinstance(cmp_node.ops[0], ast.Gt)
            and len(cmp_node.comparators) == 1
            and isinstance(cmp_node.comparators[0], ast.Name)
            and cmp_node.comparators[0].id == name
        ):
            return False
        return True

    def eval_quiet(self, node: ast.expr) -> AbsVal:
        self._suppress += 1
        try:
            return self.eval(node)
        finally:
            self._suppress -= 1

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr) -> AbsVal:
        if isinstance(node, ast.Constant):
            return const_val(node.value)
        if isinstance(node, ast.Name):
            return self._resolve_name(node.id)
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.eval_unaryop(node)
        if isinstance(node, ast.Compare):
            for cmp in node.comparators:
                self.eval(cmp)
            self.eval(node.left)
            return BOOL
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.eval(v)
            return BOOL
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = BOTTOM
            for el in node.elts:
                if isinstance(el, ast.Starred):
                    out = join(out, self.eval(el.value))
                else:
                    out = join(out, self.eval(el))
            return replace(out, native=None, tagged=None) if not out.is_bottom else TOP
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return TOP
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return TOP
        if isinstance(node, ast.Lambda):
            return TOP
        if isinstance(node, ast.Dict):
            return TOP
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return TOP
        return TOP

    def eval_attribute(self, node: ast.Attribute) -> AbsVal:
        base = self.eval(node.value)
        if base.kind == "obj" and base.obj_types:
            out = BOTTOM
            complete = True
            for cls in base.obj_types:
                seed = PROFILE_SEEDS.get(cls, {}).get(node.attr)
                if seed is None:
                    complete = False
                    break
                out = join(out, seed)
            if complete and not out.is_bottom:
                return out
            return TOP
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in KNOWN_CONSTANTS:
            return const_val(KNOWN_CONSTANTS[name.split(".")[-1]])
        return TOP

    def eval_binop(self, node: ast.BinOp) -> AbsVal:
        left = self.eval(node.left)
        right = self.eval(node.right)
        op = node.op
        if isinstance(op, ast.Add):
            out = _add(left, right)
        elif isinstance(op, ast.Sub):
            out = _sub(left, right)
        elif isinstance(op, ast.Mult):
            out = _mul(left, right)
        elif isinstance(op, ast.Div):
            return TOP_FLOAT
        elif isinstance(op, (ast.LShift, ast.RShift, ast.FloorDiv, ast.Mod, ast.Pow)):
            if (
                left.lo == left.hi
                and right.lo == right.hi
                and not left.is_bottom
                and not right.is_bottom
            ):
                try:
                    a, b = int(left.lo), int(right.lo)
                    if isinstance(op, ast.LShift):
                        return const_val(a << b)
                    if isinstance(op, ast.RShift):
                        return const_val(a >> b)
                    if isinstance(op, ast.FloorDiv) and b != 0:
                        return const_val(a // b)
                    if isinstance(op, ast.Mod) and b != 0:
                        return const_val(a % b)
                    if isinstance(op, ast.Pow) and 0 <= b <= 64:
                        return const_val(a**b)
                except (OverflowError, ValueError):
                    return TOP
            return TOP
        else:  # BitOr/BitAnd/BitXor/MatMult: boolean masks and the like
            if left.kind == "bool" and right.kind == "bool":
                return BOOL
            return TOP
        # arithmetic on a *native* narrow array wraps silently: obligation
        native = None
        if left.native in ("u8", "i16") or right.native in ("u8", "i16"):
            native = left.native if left.native in ("u8", "i16") else right.native
            compatible = (
                left.native is None
                or right.native is None
                or left.native == right.native
            )
            if compatible and native is not None:
                status = "proven" if out.in_range(native) else "unproven"
                self._site(node.lineno, "arith", _short(node), out, status)
                if status == "unproven":
                    rlo, rhi = DTYPE_RANGES[native]
                    out = mk(rlo, rhi)
                out = replace(out, native=native)
        return out

    def eval_unaryop(self, node: ast.UnaryOp) -> AbsVal:
        val = self.eval(node.operand)
        if isinstance(node.op, ast.USub) and not val.is_bottom:
            return mk(-val.hi, -val.lo)
        if isinstance(node.op, (ast.Not, ast.Invert)):
            return BOOL if val.kind == "bool" else TOP
        return val

    def eval_subscript(self, node: ast.Subscript) -> AbsVal:
        if not isinstance(node.slice, ast.Constant):
            self.eval(node.slice)
        base = self.eval(node.value)
        if base.kind in ("num", "float"):
            return base
        return TOP

    # -- calls ---------------------------------------------------------------

    def eval_call(self, node: ast.Call) -> AbsVal:
        name = dotted_name(node.func) or ""
        tail = name.split(".")[-1]
        args = node.args
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}

        def arg_val(i: int, default: AbsVal = TOP) -> AbsVal:
            return self.eval(args[i]) if len(args) > i else default

        def kw_or_arg(key: str, i: int, default: AbsVal = TOP) -> AbsVal:
            if key in kwargs:
                return self.eval(kwargs[key])
            return arg_val(i, default)

        # 0. .astype() on any receiver (Name, Call, Subscript, ...)
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            operand = self.eval(node.func.value)
            target = None
            if node.args:
                dn0 = dotted_name(node.args[0])
                if dn0 is not None:
                    target = _CAST_NAMES.get(dn0.split(".")[-1])
            return self._cast(node, operand, target)

        # 1. audited saturation helpers -> clamped summaries + certificate
        if tail in _SAT_HELPERS:
            return self._helper_summary(node, tail, arg_val)

        # 2. cross-module kernel helpers with verified behaviour
        if tail == "max_i16":
            return _max_iv(arg_val(0), arg_val(1))
        if tail in ("lane_rightshift", "shfl_up", "stripe_array"):
            fill = self.eval(kwargs["fill"]) if "fill" in kwargs else arg_val(
                2 if tail != "lane_rightshift" else 1
            )
            return replace(
                join(arg_val(0), fill), native=None, tagged=None
            )
        if tail in ("warp_max_shuffle", "warp_max_shared"):
            return replace(arg_val(0), native=None, tagged=None)
        if tail in ("parallel_lazy_f", "prefix_scan_d_chain"):
            out = mk(-32768, 32767)
            if args and isinstance(args[0], ast.Name):
                root = self._root(args[0].id)
                base = self.env.get(root, TOP)
                self.env[root] = replace(out, native=base.native, tagged=base.tagged)
                if args[0].id != root:
                    self.env[args[0].id] = self.env[root]
            return out
        if tail == "conflict_free_lane_stride":
            return mk(1, INF)
        if tail == "packed_stream_bytes":
            return mk(0, INF)

        # 3. numpy constructors and ufuncs
        np_val = self._numpy_call(node, name, tail, arg_val, kw_or_arg, kwargs)
        if np_val is not None:
            return np_val

        # 4. known classmethod constructors
        parts = name.split(".")
        if len(parts) == 2 and parts[0] in PROFILE_SEEDS and tail == "from_profile":
            for a in args:
                self.eval(a)
            return AbsVal(kind="obj", obj_types=(parts[0],))

        # 5. array/scalar methods
        if isinstance(node.func, ast.Attribute):
            recv_node = node.func.value
            method = node.func.attr
            if method in ("copy", "ravel", "reshape", "flatten", "squeeze"):
                return self.eval(recv_node)
            if method in ("max", "min", "item"):
                recv = self.eval(recv_node)
                return recv if recv.kind in ("num", "float") else TOP
            if method in ("sum", "prod", "mean", "std", "dot"):
                self.eval(recv_node)
                return TOP
            if method in ("any", "all"):
                self.eval(recv_node)
                return BOOL
            recv = self.eval(recv_node)
            if recv.kind == "obj" and recv.obj_types:
                out = BOTTOM
                for cls in recv.obj_types:
                    seed = PROFILE_SEEDS.get(cls, {}).get(method)
                    if seed is not None:
                        out = join(out, seed)
                for a in args:
                    self.eval(a)
                if not out.is_bottom:
                    return out
                return TOP

        # 6. intra-module inlining
        inlined = self._inline(node, tail)
        if inlined is not None:
            return inlined

        # 7. builtins
        if tail in ("int", "float", "round", "abs"):
            val = arg_val(0)
            if tail == "abs" and not val.is_bottom:
                return mk(
                    0.0 if val.lo <= 0 <= val.hi else min(abs(val.lo), abs(val.hi)),
                    max(abs(val.lo), abs(val.hi)),
                )
            if val.kind == "num":
                return replace(val, native=None, tagged=None)
            return TOP if tail in ("int", "round") else TOP_FLOAT
        if tail in ("min", "max") and len(args) >= 2:
            out = arg_val(0)
            for i in range(1, len(args)):
                nxt = arg_val(i)
                out = _min_iv(out, nxt) if tail == "min" else _max_iv(out, nxt)
            return replace(out, native=None, tagged=None) if not out.is_bottom else TOP
        if tail == "len":
            if args:
                self.eval(args[0])
            return mk(0, INF)
        if tail in ("range", "enumerate", "sorted", "list", "tuple", "zip", "reversed"):
            for a in args:
                self.eval(a)
            return TOP
        if tail in ("isinstance", "bool", "hasattr"):
            for a in args:
                self.eval(a)
            return BOOL

        # 8. anything else: evaluate arguments for effects, return top
        for a in args:
            self.eval(a)
        for kw in node.keywords:
            self.eval(kw.value)
        return TOP

    def _helper_summary(self, node: ast.Call, tail: str, arg_val) -> AbsVal:
        a = arg_val(0)
        if tail in ("sat_add_u8", "sat_sub_u8"):
            out = mk(0, 255)
        elif tail == "sat_add_i16":
            out = mk(-32768, 32767)
        elif tail == "clip_i16":
            out = _clip_iv(a, -32768.0, 32767.0)
            if out.is_bottom:
                out = mk(-32768, 32767)
        else:  # floor_i16: clamp below, then narrow to int32
            out = (
                mk(max(a.lo, -32768.0), max(a.hi, -32768.0))
                if not a.is_bottom
                else mk(-32768, 32767)
            )
            status = "proven" if out.in_range("i32") else "unproven"
            if status == "unproven":
                out = mk(-32768.0, DTYPE_RANGES["i32"][1])
        self._site(node.lineno, "helper", _short(node), out, "by_helper")
        for kw in node.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                self._assign_name(kw.value.id, out, node)
        return out

    def _numpy_call(
        self, node: ast.Call, name: str, tail: str, arg_val, kw_or_arg, kwargs
    ) -> Optional[AbsVal]:
        is_np = name.startswith(("np.", "numpy.")) or tail in _CAST_NAMES
        dtype_node = kwargs.get("dtype")
        dtype = None
        if dtype_node is not None:
            dn = dotted_name(dtype_node)
            if dn is not None:
                dtype = _CAST_NAMES.get(dn.split(".")[-1])
            elif isinstance(dtype_node, ast.Constant) and dtype_node.value == "bool":
                dtype = None

        if tail in ("zeros", "ones", "full", "empty", "zeros_like", "full_like",
                    "empty_like", "ones_like") and is_np:
            if tail.startswith("full"):
                fill = kw_or_arg("fill_value", 1)
            elif tail.startswith("ones"):
                fill = mk(1, 1)
            elif tail.startswith("zeros"):
                fill = mk(0, 0)
            else:
                fill = BOTTOM
            for a in node.args[:1]:
                self.eval(a)
            dn2 = dotted_name(dtype_node) if dtype_node is not None else None
            if dn2 is not None and dn2.split(".")[-1] in ("bool_", "bool8"):
                return BOOL
            if dtype_node is not None and dotted_name(dtype_node) == "bool":
                return BOOL
            native = dtype if dtype in ("u8", "i16") else None
            tagged = None
            if (
                native is None
                and dtype in ("i32", "i64")
                and self.system is not None
                and (fill.is_bottom or fill.in_range(self.system))
            ):
                tagged = self.system
            if fill.kind == "float" and dtype is None:
                return replace(fill, native=None, tagged=None)
            return replace(fill, native=native, tagged=tagged, kind="num")

        if tail in _CAST_NAMES and is_np:
            return self._cast(node, arg_val(0), _CAST_NAMES[tail])

        if tail in ("asarray", "array", "ascontiguousarray", "atleast_1d") and is_np:
            val = arg_val(0)
            if dtype in ("u8", "i16"):
                return self._cast(node, val, dtype)
            if dtype in ("i32", "i64"):
                return self._cast(node, val, dtype)
            return val

        if not is_np and not name.startswith(("np.", "numpy.")):
            return None

        if tail == "clip":
            val = arg_val(0)
            lo_v = kw_or_arg("a_min", 1)
            hi_v = kw_or_arg("a_max", 2)
            if lo_v.lo == lo_v.hi and hi_v.lo == hi_v.hi and not lo_v.is_bottom:
                out = _clip_iv(val, lo_v.lo, hi_v.hi)
                narrow = (
                    "u8"
                    if (lo_v.lo, hi_v.hi) == (0.0, 255.0)
                    else "i16"
                    if (lo_v.lo, hi_v.hi) == (-32768.0, 32767.0)
                    else None
                )
                if narrow is not None:
                    self._site(node.lineno, "clip", _short(node), out, "proven")
            else:
                out = join(val, join(lo_v, hi_v))
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    self._assign_name(kw.value.id, out, node)
            return out

        if tail in ("maximum", "minimum"):
            a, b = arg_val(0), arg_val(1)
            out = _max_iv(a, b) if tail == "maximum" else _min_iv(a, b)
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    self._assign_name(kw.value.id, out, node)
            return out

        if tail == "accumulate":
            # np.maximum.accumulate / np.minimum.accumulate: same hull
            return replace(arg_val(0), native=None, tagged=None)

        if tail == "where":
            if node.args:
                self.eval(node.args[0])
            out = join(arg_val(1), arg_val(2))
            return replace(out, native=None, tagged=None) if not out.is_bottom else TOP

        if tail in ("concatenate", "hstack", "vstack", "stack"):
            return arg_val(0)

        if tail in ("broadcast_to", "rint", "floor", "ceil", "transpose", "squeeze"):
            out = arg_val(0)
            if tail == "rint":
                return out if out.kind == "num" else TOP
            return out

        if tail == "cumsum":
            val = arg_val(0)
            if val.is_bottom:
                return val
            lo = val.lo if val.lo >= 0 else -INF
            hi = val.hi if val.hi <= 0 else INF
            return mk(min(lo, val.lo), max(hi, val.hi))

        if tail in ("bincount", "count_nonzero", "searchsorted", "argmin", "argmax",
                    "flatnonzero", "argsort", "size"):
            for a in node.args:
                self.eval(a)
            return mk(0, INF)

        if tail == "arange":
            for a in node.args:
                self.eval(a)
            return mk(0, INF) if len(node.args) <= 1 else TOP

        if tail in ("isfinite", "isnan", "isinf", "any", "all", "logical_and",
                    "logical_or", "logical_not"):
            for a in node.args:
                self.eval(a)
            return BOOL

        if tail in ("meshgrid", "shape", "split"):
            for a in node.args:
                self.eval(a)
            return TOP

        # unknown numpy call: evaluate args, no information
        for a in node.args:
            self.eval(a)
        return TOP

    def _cast(self, node: ast.AST, operand: AbsVal, target: Optional[str]) -> AbsVal:
        if target is None:
            # float / bool / intp casts carry no wrap obligation
            return replace(operand, native=None, tagged=None) if operand.kind == "num" else TOP
        if target in ("u8", "i16"):
            status = "proven" if (operand.kind == "num" and operand.in_range(target)) \
                else "unproven"
            out = operand if status == "proven" else AbsVal(*DTYPE_RANGES[target])
            self._site(node.lineno, "cast", _short(node), operand, status)  # type: ignore[attr-defined]
            return replace(out, native=target, tagged=None)
        if target == "i32":
            ok = operand.kind != "num" or operand.in_range("i32")
            if operand.kind == "num":
                status = "proven" if ok else "unproven"
                self._site(node.lineno, "cast", _short(node), operand, status)  # type: ignore[attr-defined]
            out = operand if ok and operand.kind == "num" else AbsVal(*DTYPE_RANGES["i32"])
            return replace(out, kind="num", native=None, tagged=operand.tagged)
        # i64: effectively unbounded for our value ranges.  The widened
        # copy is a fresh scratch array (sentinel domains store values
        # like the prefix-scan _FLOOR); obligations re-arise when the
        # result narrows back into a tagged carrier.
        if operand.kind == "num":
            return replace(operand, native=None, tagged=None)
        return TOP

    # -- inlining ------------------------------------------------------------

    def _inline(self, node: ast.Call, tail: str) -> Optional[AbsVal]:
        if not isinstance(node.func, ast.Name):
            return None
        fname = node.func.id
        lam = self.local_lambdas.get(fname)
        if lam is not None:
            return self._inline_lambda(lam, node)
        target = self.local_funcs.get(fname) or self.ctx.functions.get(fname)
        if target is None or target is self.fn or self.depth >= _MAX_INLINE_DEPTH:
            if target is not None:
                for a in node.args:
                    self.eval(a)
                return TOP
            return None
        bound = self._bind_call(target, node)
        if bound is None:
            return TOP
        sub = _Interp(self.ctx, target, bound, depth=self.depth + 1, record=False)
        if fname in self.local_funcs:
            # nested defs close over our locals
            merged = dict(self.env)
            merged.update(bound)
            sub.env = dict(self.ctx.module_env)
            sub.env.update(merged)
        sub.local_funcs = dict(self.local_funcs)
        sub.local_lambdas = dict(self.local_lambdas)
        try:
            sub.run()
        except RecursionError:  # pragma: no cover - defensive
            return TOP
        # re-join mutated parameters into caller variables (in-place
        # effects like _lazy_f(DMX, ...) writing through its first arg)
        params = [a.arg for a in target.args.args]
        for pname, anode in zip(params, node.args):
            if isinstance(anode, ast.Name) and pname in sub.env:
                root = self._root(anode.id)
                base = self.env.get(root, TOP)
                self.env[root] = replace(
                    join(base, sub.env[pname]), native=base.native, tagged=base.tagged
                )
                if anode.id != root:
                    self.env[anode.id] = self.env[root]
        return sub.ret if not sub.ret.is_bottom else TOP

    def _inline_lambda(self, lam: ast.Lambda, node: ast.Call) -> AbsVal:
        saved_env = dict(self.env)
        saved_alias = dict(self.alias)
        try:
            params = [a.arg for a in lam.args.args]
            for pname, anode in zip(params, node.args):
                self.env[pname] = self.eval(anode)
                self.alias.pop(pname, None)
            self._suppress += 1
            try:
                return self.eval(lam.body)
            finally:
                self._suppress -= 1
        finally:
            self.env = saved_env
            self.alias = saved_alias

    def _bind_call(
        self, target: ast.FunctionDef, node: ast.Call
    ) -> Optional[Dict[str, AbsVal]]:
        bound: Dict[str, AbsVal] = {}
        params = list(target.args.args)
        defaults = list(target.args.defaults)
        for i, p in enumerate(params):
            n_no_default = len(params) - len(defaults)
            if i < len(node.args):
                if isinstance(node.args[i], ast.Starred):
                    return None
                bound[p.arg] = self.eval(node.args[i])
            elif i >= n_no_default:
                bound[p.arg] = self.eval_quiet(defaults[i - n_no_default])
            else:
                bound[p.arg] = TOP
        for kw in node.keywords:
            if kw.arg is not None:
                bound[kw.arg] = self.eval(kw.value)
        for p in target.args.kwonlyargs:
            bound.setdefault(p.arg, TOP)
        return bound


# ---------------------------------------------------------------------------
# module analysis entry points
# ---------------------------------------------------------------------------


def _module_env(tree: ast.Module, ctx: _ModuleCtx) -> Dict[str, AbsVal]:
    """Abstract values of simple module-level constant assignments."""
    dummy = ast.FunctionDef(
        name="<module>", args=ast.arguments(
            posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[], defaults=[]
        ), body=[], decorator_list=[], returns=None, type_comment=None,
    )
    interp = _Interp(ctx, dummy, {}, record=False)
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and all(
            isinstance(t, ast.Name) for t in stmt.targets
        ):
            try:
                val = interp.eval(stmt.value)
            except Exception:
                val = TOP
            for t in stmt.targets:
                assert isinstance(t, ast.Name)
                interp.env[t.id] = val
    return {
        k: v
        for k, v in interp.env.items()
        if v is not TOP and not (v.lo == -INF and v.hi == INF)
    }


def _iter_functions(tree: ast.Module):
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            yield node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, ast.FunctionDef):
                    yield sub


def analyze_module(tree: ast.Module, path: str) -> ModuleProof:
    """Interval-analyze every top-level function and method of *path*."""
    norm = path.replace("\\", "/")
    system = _MODULE_SYSTEMS.get(norm)
    basename = norm.rsplit("/", 1)[-1]
    ctx = _ModuleCtx(
        path=norm,
        system=system,
        functions={fn.name: fn for fn in tree.body if isinstance(fn, ast.FunctionDef)},
        module_env={},
        basename=basename,
    )
    ctx.module_env = _module_env(tree, ctx)
    proof = ModuleProof(path=norm)
    for fn in _iter_functions(tree):
        seeds = {}
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                seeds[arg.arg] = TOP
            else:
                seeds[arg.arg] = _param_seed(ctx, fn.name, arg)
        interp = _Interp(ctx, fn, seeds)
        interp.run()
        fproof = FunctionProof(name=fn.name)
        seen = set()
        for site in interp.sites:
            key = (site.line, site.kind, site.detail, site.status)
            if key not in seen:
                seen.add(key)
                fproof.sites.append(site)
        proof.functions.append(fproof)
    return proof


def analyze_source(path: str, source: str) -> ModuleProof:
    return analyze_module(ast.parse(source, filename=path), path)


def certified_clip_lines(tree: ast.Module, path: str) -> frozenset:
    """Lines of encode-step ``np.clip`` calls the prover certifies.

    Only consulted for :data:`ENCODE_MODULES`; everywhere else the
    syntactic R003 clip check stands unchanged.
    """
    if path.replace("\\", "/") not in ENCODE_MODULES:
        return frozenset()
    try:
        return analyze_module(tree, path).certified_clip_lines
    except Exception:  # pragma: no cover - fail safe: keep the finding
        return frozenset()


# ---------------------------------------------------------------------------
# the --prove rule and certificate collection
# ---------------------------------------------------------------------------


def _fmt_bound(x: float) -> str:
    if x == INF:
        return "inf"
    if x == -INF:
        return "-inf"
    return str(int(x))


class IntervalProverRule(Rule):
    """R003 (prove mode): interval escape from a u8/i16 obligation site.

    Not part of ``ALL_RULES`` — the CLI appends it under ``--prove`` so
    the syntactic R003 check and this semantic one share an id, path
    scope and baseline namespace without double-reporting by default.
    """

    id = "R003"
    title = "interval prover: narrow-dtype range escape"
    rationale = (
        "Abstract interpretation over quantizer-seeded intervals proves "
        "each u8/i16 site in the filter kernels cannot wrap; an unproven "
        "site is a potential silent score corruption."
    )

    def applies_to(self, path: str) -> bool:
        return path.replace("\\", "/") in PROVE_TARGETS

    def check(self, tree, lines, path):
        try:
            proof = analyze_module(tree, path)
        except Exception as exc:  # pragma: no cover - surface, don't hide
            return [
                Finding(
                    self.id, path, 1, "prove:internal-error",
                    f"interval prover crashed on this module: {exc!r}",
                )
            ]
        findings: List[Finding] = []
        for site in proof.unproven:
            rng = DTYPE_RANGES.get(site.system or "", (-INF, INF))
            findings.append(
                Finding(
                    self.id, path, site.line,
                    f"prove:{site.function}:{site.kind}:{site.detail}",
                    f"unproven {site.kind} '{site.detail}' in "
                    f"{site.function}(): interval "
                    f"[{_fmt_bound(site.lo)}, {_fmt_bound(site.hi)}] escapes "
                    f"the {site.system or 'narrow'} range "
                    f"[{_fmt_bound(rng[0])}, {_fmt_bound(rng[1])}]; route "
                    "the value through a sat_*/clip_i16 guardrail",
                )
            )
        return findings


def certificate_doc(root: str, paths: Sequence[str] = PROVE_TARGETS) -> Dict[str, object]:
    """Build the machine-readable proof-certificate document."""
    import os

    targets: List[Dict[str, object]] = []
    errors: List[str] = []
    for rel in paths:
        full = os.path.join(root, rel)
        try:
            with open(full, "r", encoding="utf-8") as fh:
                source = fh.read()
            proof = analyze_source(rel, source)
        except (OSError, SyntaxError) as exc:
            errors.append(f"{rel}: {exc}")
            continue
        targets.append(proof.to_doc())
    n_sites = sum(int(t["sites"]) for t in targets)  # type: ignore[call-overload]
    n_unproven = sum(int(t["unproven"]) for t in targets)  # type: ignore[call-overload]
    return {
        "tool": "repro-prove",
        "proven": n_unproven == 0 and not errors,
        "sites": n_sites,
        "unproven": n_unproven,
        "errors": errors,
        "targets": targets,
    }
