"""Command-line front-end: ``repro-lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean (baselined findings do not fail), 1 new findings
or parse errors, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from . import baseline as baseline_mod
from . import engine, report
from .absint import IntervalProverRule, certificate_doc
from .locks import ALL_PACKAGE_RULES
from .rules import ALL_RULES


def _find_root(start: str) -> str:
    """Walk up from *start* to the repo root (pyproject.toml marker)."""
    cur = os.path.abspath(start)
    while True:
        if os.path.exists(os.path.join(cur, "pyproject.toml")):
            return cur
        parent = os.path.dirname(cur)
        if parent == cur:
            return os.path.abspath(start)
        cur = parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant static analyzer for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline", default=baseline_mod.DEFAULT_BASELINE, metavar="FILE",
        help="baseline file, repo-root relative "
             f"(default: {baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover all current findings "
             "(keeps existing justifications)",
    )
    parser.add_argument(
        "--prove", action="store_true",
        help="run the interval abstract interpreter over the kernel and "
             "scoring modules, fail on unproven u8/i16 sites, and attach "
             "the proof certificates to the report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list baselined findings in text output",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in list(ALL_RULES) + list(ALL_PACKAGE_RULES):
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"      {rule.rationale}")
    prover = IntervalProverRule()
    lines.append(f"{prover.id} (--prove)  {prover.title}")
    lines.append(f"      {prover.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = args.root or _find_root(os.getcwd())
    baseline_path = (
        args.baseline
        if os.path.isabs(args.baseline)
        else os.path.join(root, args.baseline)
    )

    try:
        baseline = (
            baseline_mod.Baseline()
            if args.no_baseline
            else baseline_mod.Baseline.load(baseline_path)
        )
    except (ValueError, OSError) as exc:
        print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
        return 2

    paths: List[str] = list(args.paths) or ["src"]
    rules = tuple(ALL_RULES)
    certificates = None
    if args.prove:
        rules = rules + (IntervalProverRule(),)
        certificates = certificate_doc(root)
    result = engine.run(paths, root, baseline=baseline, rules=rules)

    if args.update_baseline:
        fresh = baseline_mod.Baseline.from_findings(
            result.findings + result.baselined
        )
        merged = baseline.merged_with(fresh)
        # drop stale keys that no longer match anything
        live = {f.key for f in result.findings + result.baselined}
        merged.entries = {k: v for k, v in merged.entries.items() if k in live}
        merged.save(baseline_path)
        print(
            f"repro-lint: baseline updated: {len(merged.entries)} entries "
            f"-> {os.path.relpath(baseline_path, root)}"
        )
        return 0

    rendered = (
        report.render_json(result, certificates=certificates)
        if args.format == "json"
        else report.render_text(
            result, verbose=args.verbose, certificates=certificates
        )
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered if rendered.endswith("\n") else rendered + "\n")
    else:
        print(rendered)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
