"""Correctness tooling: the repro-lint static analyzer and the
warp-model sanitizer.

Static side — ``repro-lint`` / ``python -m repro.analysis`` — checks
project invariants (determinism, facade discipline, overflow
guardrails, lock protocols, frozen contracts) on every commit; see
:mod:`repro.analysis.rules` for the catalog.  Two semantic passes ride
the same engine: ``repro-lint --prove`` runs the interval abstract
interpreter (:mod:`repro.analysis.absint`) that certifies the
quantized filter kernels overflow-free, and the package rules in
:mod:`repro.analysis.locks` verify the service plane's lock order
(R006) and async-readiness (R007) interprocedurally.

Runtime side — :class:`WarpSanitizer` — instruments the simulated
shared-memory traffic of the warp kernels when ``REPRO_SANITIZE=1``;
see :mod:`repro.analysis.sanitizer`.
"""

from .absint import (
    ENCODE_MODULES,
    PROVE_TARGETS,
    IntervalProverRule,
    analyze_module,
    analyze_source,
    certificate_doc,
)
from .baseline import Baseline
from .engine import LintResult, lint_file, run
from .locks import (
    ALL_PACKAGE_RULES,
    AsyncReadinessRule,
    GuardedEscapeRule,
    LockOrderRule,
    PackageRule,
    build_lock_model,
)
from .rules import ALL_RULES, RULES_BY_ID, Finding
from .sanitizer import (
    SanitizerReport,
    WarpSanitizer,
    env_enabled,
    resolve_sanitizer,
)

__all__ = [
    "ALL_PACKAGE_RULES",
    "ALL_RULES",
    "ENCODE_MODULES",
    "PROVE_TARGETS",
    "RULES_BY_ID",
    "AsyncReadinessRule",
    "Baseline",
    "Finding",
    "GuardedEscapeRule",
    "IntervalProverRule",
    "LintResult",
    "LockOrderRule",
    "PackageRule",
    "SanitizerReport",
    "WarpSanitizer",
    "analyze_module",
    "analyze_source",
    "build_lock_model",
    "certificate_doc",
    "env_enabled",
    "lint_file",
    "resolve_sanitizer",
    "run",
]
