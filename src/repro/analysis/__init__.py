"""Correctness tooling: the repro-lint static analyzer and the
warp-model sanitizer.

Static side — ``repro-lint`` / ``python -m repro.analysis`` — checks
project invariants (determinism, facade discipline, overflow
guardrails, lock protocols, frozen contracts) on every commit; see
:mod:`repro.analysis.rules` for the catalog.

Runtime side — :class:`WarpSanitizer` — instruments the simulated
shared-memory traffic of the warp kernels when ``REPRO_SANITIZE=1``;
see :mod:`repro.analysis.sanitizer`.
"""

from .baseline import Baseline
from .engine import LintResult, lint_file, run
from .rules import ALL_RULES, RULES_BY_ID, Finding
from .sanitizer import (
    SanitizerReport,
    WarpSanitizer,
    env_enabled,
    resolve_sanitizer,
)

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Baseline",
    "Finding",
    "LintResult",
    "SanitizerReport",
    "WarpSanitizer",
    "env_enabled",
    "lint_file",
    "resolve_sanitizer",
    "run",
]
