"""Grandfathered-finding baseline.

The baseline is a committed JSON document mapping stable finding keys
(``rule::path::symbol``) to a human-written justification.  A finding
whose key appears here is reported as *baselined* instead of failing
the run; a baseline entry that no longer matches anything is reported
as stale so the file shrinks over time instead of rotting.

Keys are line-independent on purpose: unrelated edits that shift code
around do not invalidate a justified entry, but moving the offending
code to a new file or symbol does.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from .rules import Finding

FORMAT_VERSION = 1

DEFAULT_BASELINE = "src/repro/analysis/baseline.json"


@dataclass
class Baseline:
    """In-memory view of baseline.json."""

    entries: Dict[str, str] = field(default_factory=dict)

    def contains(self, key: str) -> bool:
        return key in self.entries

    def keys(self) -> List[str]:
        return list(self.entries)

    def justification(self, key: str) -> str:
        return self.entries.get(key, "")

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {doc.get('version')!r} "
                f"in {path} (expected {FORMAT_VERSION})"
            )
        entries = {
            e["key"]: e.get("justification", "")
            for e in doc.get("entries", [])
        }
        return cls(entries=entries)

    def save(self, path: str) -> None:
        doc = {
            "version": FORMAT_VERSION,
            "entries": [
                {"key": key, "justification": self.entries[key]}
                for key in sorted(self.entries)
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        justification: str = "TODO: justify or fix",
    ) -> "Baseline":
        return cls(entries={f.key: justification for f in findings})

    def merged_with(self, other: "Baseline") -> "Baseline":
        """Existing justifications win over placeholder text."""
        merged = dict(other.entries)
        merged.update(self.entries)
        return Baseline(entries=merged)
