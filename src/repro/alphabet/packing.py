"""Residue packing: six 5-bit residues per 32-bit word (paper Figure 6).

The paper reduces global-memory bandwidth by packing 6 consecutive digital
residues (codes 0..28) into one unsigned 32-bit word, using bits
``[29:25] [24:20] [19:15] [14:10] [9:5] [4:0]``; the first residue of the
group occupies the *most significant* field, matching the left-to-right
layout in Figure 6.  Padding slots in the final word carry the terminator
flag 31 so a kernel can stop its residue loop without knowing the length.

Packing is a pure layout transform: :func:`unpack_residues` is the exact
inverse of :func:`pack_residues` for any valid residue sequence.
"""

from __future__ import annotations

import numpy as np

from ..constants import PACK_TERMINATOR, RESIDUE_BITS, RESIDUES_PER_WORD
from ..errors import AlphabetError

__all__ = [
    "pack_residues",
    "unpack_residues",
    "packed_length_words",
    "packed_stream_bytes",
]

#: Bit shift of each of the 6 sub-words, first residue most significant.
_SHIFTS = np.array(
    [(RESIDUES_PER_WORD - 1 - j) * RESIDUE_BITS for j in range(RESIDUES_PER_WORD)],
    dtype=np.uint32,
)

_FIELD_MASK = np.uint32((1 << RESIDUE_BITS) - 1)


def packed_length_words(n_residues: int) -> int:
    """Number of 32-bit words needed to pack ``n_residues`` residues."""
    if n_residues < 0:
        raise AlphabetError("residue count must be non-negative")
    return -(-n_residues // RESIDUES_PER_WORD)


def packed_stream_bytes(n_residues: int) -> int:
    """Global-memory bytes used by a packed sequence of ``n_residues``."""
    return 4 * packed_length_words(n_residues)


def pack_residues(codes: np.ndarray) -> np.ndarray:
    """Pack digital residue codes into 32-bit words.

    Parameters
    ----------
    codes:
        1-D array of digital codes, each in ``0..30`` (31 is reserved for
        the terminator and must not appear in input).

    Returns
    -------
    numpy.ndarray
        ``uint32`` array of ``ceil(len/6)`` packed words; trailing slots of
        the final word are filled with the terminator flag 31.
    """
    arr = np.ascontiguousarray(codes, dtype=np.uint32)
    if arr.ndim != 1:
        raise AlphabetError("pack_residues expects a 1-D code array")
    if arr.size and arr.max() >= PACK_TERMINATOR:
        raise AlphabetError(
            f"residue code >= {PACK_TERMINATOR} cannot be packed "
            "(31 is the terminator flag)"
        )
    n_words = packed_length_words(arr.size)
    padded = np.full(n_words * RESIDUES_PER_WORD, PACK_TERMINATOR, dtype=np.uint32)
    padded[: arr.size] = arr
    groups = padded.reshape(n_words, RESIDUES_PER_WORD)
    return (groups << _SHIFTS).sum(axis=1, dtype=np.uint32)


def unpack_residues(words: np.ndarray, n_residues: int | None = None) -> np.ndarray:
    """Unpack 32-bit words back into digital residue codes.

    Parameters
    ----------
    words:
        ``uint32`` packed words as produced by :func:`pack_residues`.
    n_residues:
        Exact residue count to return.  When omitted, unpacking stops at
        the first terminator flag (code 31), mirroring how the simulated
        kernels detect end-of-sequence.
    """
    arr = np.ascontiguousarray(words, dtype=np.uint32)
    if arr.ndim != 1:
        raise AlphabetError("unpack_residues expects a 1-D word array")
    fields = ((arr[:, None] >> _SHIFTS) & _FIELD_MASK).reshape(-1)
    if n_residues is None:
        terminators = np.flatnonzero(fields == PACK_TERMINATOR)
        end = int(terminators[0]) if terminators.size else fields.size
    else:
        if n_residues < 0 or n_residues > fields.size:
            raise AlphabetError(
                f"cannot unpack {n_residues} residues from {arr.size} words"
            )
        end = n_residues
    return fields[:end].astype(np.uint8)
