"""Digital amino-acid alphabet and residue packing."""

from .amino import AMINO, AminoAlphabet
from .packing import (
    pack_residues,
    packed_length_words,
    packed_stream_bytes,
    unpack_residues,
)

__all__ = [
    "AMINO",
    "AminoAlphabet",
    "pack_residues",
    "unpack_residues",
    "packed_length_words",
    "packed_stream_bytes",
]
