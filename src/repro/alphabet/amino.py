"""The digitized amino-acid alphabet used throughout the library.

The paper (Figure 6) encodes each residue in 5 bits: 20 standard amino
acids, 6 degenerate symbols (``B J Z O U X``) and 3 gap/special symbols
(``- * ~``), i.e. digital codes 0..28, with code 31 reserved as the packed
terminator flag.  This module owns the symbol table, digitization, and
degeneracy semantics; :mod:`repro.alphabet.packing` owns the bit packing.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import AlphabetError

__all__ = ["AminoAlphabet", "AMINO"]

_CANONICAL = "ACDEFGHIKLMNPQRSTVWY"
_DEGENERATE = "BJZOUX"
_SPECIAL = "-*~"

# Which canonical residues a degenerate symbol may stand for.  ``X`` means
# fully unknown; ``O`` (pyrrolysine) and ``U`` (selenocysteine) map onto
# their closest canonical residue as in Easel.
_DEGENERACY: dict[str, str] = {
    "B": "DN",
    "J": "IL",
    "Z": "EQ",
    "O": "K",
    "U": "C",
    "X": _CANONICAL,
}


class AminoAlphabet:
    """Digital protein alphabet with degeneracy support.

    Instances are stateless and cheap; the module-level singleton
    :data:`AMINO` should be used in almost all cases.

    Attributes
    ----------
    K:
        Number of canonical residues (20).
    Kp:
        Total number of digital codes including degeneracies and specials
        (29).
    """

    def __init__(self) -> None:
        self.symbols: str = _CANONICAL + _DEGENERATE + _SPECIAL
        self.K: int = len(_CANONICAL)
        self.Kp: int = len(self.symbols)
        self._sym_to_code: dict[str, int] = {
            s: i for i, s in enumerate(self.symbols)
        }
        # Degeneracy expansion matrix: row d (over all Kp codes) has True in
        # column c when digital code d may represent canonical code c.
        matrix = np.zeros((self.Kp, self.K), dtype=bool)
        for i in range(self.K):
            matrix[i, i] = True
        for sym, expansion in _DEGENERACY.items():
            d = self._sym_to_code[sym]
            for c in expansion:
                matrix[d, self._sym_to_code[c]] = True
        self._degeneracy = matrix

    # -- basic classification ------------------------------------------------

    def is_canonical(self, code: int) -> bool:
        """True when ``code`` denotes one of the 20 standard amino acids."""
        return 0 <= code < self.K

    def is_degenerate(self, code: int) -> bool:
        """True when ``code`` is one of the 6 degenerate residue codes."""
        return self.K <= code < self.K + len(_DEGENERATE)

    def is_residue(self, code: int) -> bool:
        """True when ``code`` denotes a residue (canonical or degenerate)."""
        return 0 <= code < self.K + len(_DEGENERATE)

    def is_special(self, code: int) -> bool:
        """True when ``code`` is a gap/terminator symbol (``- * ~``)."""
        return self.K + len(_DEGENERATE) <= code < self.Kp

    # -- conversions ---------------------------------------------------------

    def code(self, symbol: str) -> int:
        """Digital code of a single symbol (case-insensitive)."""
        try:
            return self._sym_to_code[symbol.upper()]
        except KeyError:
            raise AlphabetError(f"unknown amino symbol {symbol!r}") from None

    def symbol(self, code: int) -> str:
        """Text symbol for a digital code."""
        if not 0 <= code < self.Kp:
            raise AlphabetError(f"digital code {code} out of range 0..{self.Kp - 1}")
        return self.symbols[code]

    def encode(self, text: str) -> np.ndarray:
        """Digitize a string into a ``uint8`` code array.

        Raises
        ------
        AlphabetError
            If any character is not part of the alphabet.
        """
        try:
            return np.fromiter(
                (self._sym_to_code[c] for c in text.upper()),
                dtype=np.uint8,
                count=len(text),
            )
        except KeyError as exc:
            raise AlphabetError(f"unknown amino symbol {exc.args[0]!r}") from None

    def decode(self, codes: Iterable[int]) -> str:
        """Render a digital code sequence back into text."""
        return "".join(self.symbol(int(c)) for c in codes)

    # -- degeneracy ----------------------------------------------------------

    def expand(self, code: int) -> np.ndarray:
        """Canonical codes that a (possibly degenerate) residue may be."""
        if not self.is_residue(code):
            raise AlphabetError(f"code {code} is not a residue")
        return np.flatnonzero(self._degeneracy[code])

    def degeneracy_matrix(self) -> np.ndarray:
        """Boolean ``(Kp, K)`` matrix mapping every code to canonicals.

        Special codes have all-False rows; callers scoring a special code
        must treat it as an error or an impossible emission.
        """
        return self._degeneracy.copy()

    def validate_sequence(self, codes: np.ndarray) -> None:
        """Check that every code in ``codes`` is a residue (not a special).

        Search sequences must not contain gap symbols; the packer reserves
        code 31 for its terminator flag and the scoring profiles only define
        emissions for residue codes.
        """
        arr = np.asarray(codes)
        if arr.size and (arr.min() < 0 or arr.max() >= self.K + len(_DEGENERATE)):
            bad = arr[(arr < 0) | (arr >= self.K + len(_DEGENERATE))][0]
            raise AlphabetError(
                f"sequence contains non-residue digital code {int(bad)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AminoAlphabet(K={self.K}, Kp={self.Kp})"


#: Module-level singleton; the alphabet is immutable so sharing is safe.
AMINO = AminoAlphabet()
