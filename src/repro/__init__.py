"""repro: a reproduction of "Fine-Grained Acceleration of HMMER 3.0 via
Architecture-Aware Optimization on Massively Parallel Processors"
(Jiang & Ganesan, IPDPSW 2015).

The package contains a from-scratch HMMER 3.0 ``hmmsearch`` engine
(Plan-7 profile HMMs, the quantized MSV and ViterbiFilter scoring
systems, striped SSE baselines, full-precision Forward/Backward, the
filter pipeline with Gumbel/exponential statistics) plus a simulated
SIMT GPU substrate on which the paper's warp-synchronous kernels run
with bit-identical scores, and a mechanistic performance model that
regenerates every figure of the paper's evaluation.

The supported import surface is the :mod:`repro.api` facade::

    import repro

    hmm = repro.load_hmm("globin.hmm")
    db = repro.load_fasta("swissprot.fa")
    results = repro.search(hmm, db, repro.SearchOptions(engine="gpu"))
    print(results.summary())

Every pre-facade name (``HmmsearchPipeline``, ``sample_hmm``,
``msv_warp_kernel``, ...) keeps importing from :mod:`repro` through a
lazy compatibility layer, but new code should import such internals
from their defining submodule.
"""

from __future__ import annotations

from importlib import import_module

from .api import (
    EngineSpec,
    ScanOptions,
    SearchOptions,
    SearchResults,
    batch_search,
    fsck_library,
    get_engine,
    list_engines,
    load_fasta,
    load_hmm,
    load_library,
    press_library,
    register_engine,
    scan,
    search,
    search_many,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "load_hmm",
    "load_fasta",
    "search",
    "search_many",
    "batch_search",
    "press_library",
    "load_library",
    "fsck_library",
    "scan",
    "SearchOptions",
    "ScanOptions",
    "SearchResults",
    "EngineSpec",
    "register_engine",
    "get_engine",
    "list_engines",
]

# -- legacy compatibility (PEP 562) ------------------------------------------
# Everything `from repro import X` resolved before the facade keeps
# working: names resolve lazily to their defining submodule on first
# attribute access.  __all__ above intentionally lists only the facade.

_LEGACY = {
    # alphabet & sequences
    "AMINO": "repro.alphabet",
    "AminoAlphabet": "repro.alphabet",
    "pack_residues": "repro.alphabet",
    "unpack_residues": "repro.alphabet",
    "DigitalSequence": "repro.sequence",
    "SequenceDatabase": "repro.sequence",
    "read_fasta": "repro.sequence",
    "write_fasta": "repro.sequence",
    "swissprot_like": "repro.sequence",
    "envnr_like": "repro.sequence",
    # models & profiles
    "Plan7HMM": "repro.hmm",
    "NullModel": "repro.hmm",
    "SearchProfile": "repro.hmm",
    "build_hmm_from_msa": "repro.hmm",
    "sample_hmm": "repro.hmm",
    "save_hmm": "repro.hmm",
    "PAPER_MODEL_SIZES": "repro.hmm",
    "MSVByteProfile": "repro.scoring",
    "ViterbiWordProfile": "repro.scoring",
    # engines
    "msv_score_sequence": "repro.cpu",
    "msv_score_batch": "repro.cpu",
    "viterbi_score_sequence": "repro.cpu",
    "viterbi_score_batch": "repro.cpu",
    "generic_viterbi_score": "repro.cpu",
    "generic_forward_score": "repro.cpu",
    "generic_backward_score": "repro.cpu",
    # GPU substrate & kernels
    "DeviceSpec": "repro.gpu",
    "KEPLER_K40": "repro.gpu",
    "FERMI_GTX580": "repro.gpu",
    "KernelCounters": "repro.gpu",
    "MemoryConfig": "repro.kernels",
    "Stage": "repro.kernels",
    "msv_warp_kernel": "repro.kernels",
    "viterbi_warp_kernel": "repro.kernels",
    "stage_occupancy": "repro.kernels",
    # pipeline
    "HmmsearchPipeline": "repro.pipeline",
    "Engine": "repro.pipeline",
    "PipelineThresholds": "repro.pipeline",
    "ModelLibrary": "repro.pipeline",
    "ScanHit": "repro.pipeline",
    "ScanResults": "repro.pipeline",
    "OracleReport": "repro.pipeline",
    # model-library scanning
    "LibraryCatalog": "repro.scan",
    "CatalogEntry": "repro.scan",
    "PressSettings": "repro.scan",
    "ScanService": "repro.scan",
    "LibraryScanHit": "repro.scan",
    "LibraryScanResults": "repro.scan",
    "BucketPlan": "repro.scan",
    "ModelBucket": "repro.scan",
    "CoscheduleGroup": "repro.scan",
    "build_bucket_plan": "repro.scan",
    "coschedule_groups": "repro.scan",
    "memconfig_crossover": "repro.scan",
    "hmm_fingerprint": "repro.hmm.fingerprint",
    "content_seed": "repro.hmm.fingerprint",
    "Divergence": "repro.pipeline",
    "GuardrailCounters": "repro.scoring",
    "PosteriorDecoding": "repro.cpu.posterior",
    "posterior_decode": "repro.cpu.posterior",
    "domain_regions": "repro.cpu.posterior",
    "viterbi_traceback": "repro.cpu.traceback",
    "ViterbiAlignment": "repro.cpu.traceback",
    "align_to_profile": "repro.cpu.hmmalign",
    # data-plane hardening
    "IngestPolicy": "repro.hardening",
    "PolicyMode": "repro.hardening",
    "STRICT": "repro.hardening",
    "SALVAGE": "repro.hardening",
    "RecordQuarantine": "repro.hardening",
    "QuarantinedRecord": "repro.hardening",
    # errors
    "ReproError": "repro.errors",
    "QuarantineError": "repro.errors",
    "DivergenceError": "repro.errors",
    "CatalogError": "repro.errors",
    "UnknownEngineError": "repro.errors",
    # -- tooling surface ------------------------------------------------
    # Names sanctioned for code *outside* src/repro (examples, the
    # benchmark suite, tools): the repro-lint facade rule (R002) allows
    # external code to import only repro / repro.api top-level names, so
    # everything the figure benchmarks and study scripts legitimately
    # need is re-exported here instead of deep-imported.
    "packed_stream_bytes": "repro.alphabet",
    "pfam_band_fractions": "repro.hmm",
    "sample_pfam_size": "repro.hmm",
    "SYNCS_PER_ROW": "repro.kernels",
    "msv_multiwarp_sync_kernel": "repro.kernels",
    "Tracer": "repro.obs",
    "compare_bench": "repro.obs",
    "load_bench": "repro.obs",
    "write_bench_json": "repro.obs",
    "DEFAULT_COSTS": "repro.perf",
    "CostConstants": "repro.perf",
    "StageWork": "repro.perf",
    "gpu_stage_time": "repro.perf",
    "cpu_stage_time": "repro.perf",
    "cpu_forward_time": "repro.perf",
    "best_gpu_stage_time": "repro.perf",
    "transfer_time_s": "repro.perf",
    "stage_speedup": "repro.perf",
    "optimal_stage_speedup": "repro.perf",
    "overall_speedup": "repro.perf",
    "multi_gpu_speedup": "repro.perf",
    "hybrid_stage_split": "repro.perf",
    "SchedulePolicy": "repro.perf",
    "imbalance_factor": "repro.perf",
    "kernel_intensity": "repro.perf",
    "ridge_point": "repro.perf",
    "roofline_summary": "repro.perf",
    "paper_hmm": "repro.perf",
    "paper_database": "repro.perf",
    "experiment_workload": "repro.perf",
    "PAPER_RESIDUES": "repro.perf.workloads",
    "homolog_database": "repro.sequence",
    "random_sequence_codes": "repro.sequence",
    "BatchSearchService": "repro.service",
    "DevicePool": "repro.service",
    "FaultPlan": "repro.service",
    "FaultKind": "repro.service",
    "FaultSpec": "repro.service",
    "PipelineCache": "repro.service",
    "PipelineSettings": "repro.service",
    "RunJournal": "repro.service",
    "DurableRunJournal": "repro.service",
    "WriteAheadJournal": "repro.service",
    "ShardCheckpoint": "repro.service",
    "CrashPoint": "repro.service",
    "WAL_SCHEMA": "repro.service",
    "result_digest": "repro.service",
    "MetricsRegistry": "repro.service",
    "JournalCorruptError": "repro.errors",
    "FsckReport": "repro.scan",
    "FsckProblem": "repro.scan",
    "fsck_store": "repro.scan",
    "RetryPolicy": "repro.service",
    "Scheduler": "repro.service",
    "JobQueue": "repro.service",
    "submit_manifest": "repro.service",
    # overload protection (admission control, deadlines, watchdog)
    "AdmissionController": "repro.service",
    "AdmissionLimits": "repro.service",
    "CostEstimate": "repro.service",
    "DegradationState": "repro.service",
    "estimate_job_cost": "repro.service",
    "Deadline": "repro.service",
    "ShardWatchdog": "repro.service",
    "VirtualClock": "repro.service",
    "OverloadError": "repro.errors",
    "DeadlineExceeded": "repro.errors",
    # correctness tooling
    "SanitizerReport": "repro.analysis",
    "WarpSanitizer": "repro.analysis",
}


def __getattr__(name: str):
    module = _LEGACY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each legacy name once
    return value


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(_LEGACY))
