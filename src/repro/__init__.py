"""repro: a reproduction of "Fine-Grained Acceleration of HMMER 3.0 via
Architecture-Aware Optimization on Massively Parallel Processors"
(Jiang & Ganesan, IPDPSW 2015).

The package contains a from-scratch HMMER 3.0 ``hmmsearch`` engine
(Plan-7 profile HMMs, the quantized MSV and ViterbiFilter scoring
systems, striped SSE baselines, full-precision Forward/Backward, the
filter pipeline with Gumbel/exponential statistics) plus a simulated
SIMT GPU substrate on which the paper's warp-synchronous kernels run
with bit-identical scores, and a mechanistic performance model that
regenerates every figure of the paper's evaluation.

The supported import surface is the :mod:`repro.api` facade::

    import repro

    hmm = repro.load_hmm("globin.hmm")
    db = repro.load_fasta("swissprot.fa")
    results = repro.search(hmm, db, repro.SearchOptions(engine="gpu"))
    print(results.summary())

Every pre-facade name (``HmmsearchPipeline``, ``sample_hmm``,
``msv_warp_kernel``, ...) keeps importing from :mod:`repro` through a
lazy compatibility layer, but new code should import such internals
from their defining submodule.
"""

from __future__ import annotations

from importlib import import_module

from .api import (
    SearchOptions,
    SearchResults,
    batch_search,
    load_fasta,
    load_hmm,
    search,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "load_hmm",
    "load_fasta",
    "search",
    "batch_search",
    "SearchOptions",
    "SearchResults",
]

# -- legacy compatibility (PEP 562) ------------------------------------------
# Everything `from repro import X` resolved before the facade keeps
# working: names resolve lazily to their defining submodule on first
# attribute access.  __all__ above intentionally lists only the facade.

_LEGACY = {
    # alphabet & sequences
    "AMINO": "repro.alphabet",
    "AminoAlphabet": "repro.alphabet",
    "pack_residues": "repro.alphabet",
    "unpack_residues": "repro.alphabet",
    "DigitalSequence": "repro.sequence",
    "SequenceDatabase": "repro.sequence",
    "read_fasta": "repro.sequence",
    "write_fasta": "repro.sequence",
    "swissprot_like": "repro.sequence",
    "envnr_like": "repro.sequence",
    # models & profiles
    "Plan7HMM": "repro.hmm",
    "NullModel": "repro.hmm",
    "SearchProfile": "repro.hmm",
    "build_hmm_from_msa": "repro.hmm",
    "sample_hmm": "repro.hmm",
    "save_hmm": "repro.hmm",
    "PAPER_MODEL_SIZES": "repro.hmm",
    "MSVByteProfile": "repro.scoring",
    "ViterbiWordProfile": "repro.scoring",
    # engines
    "msv_score_sequence": "repro.cpu",
    "msv_score_batch": "repro.cpu",
    "viterbi_score_sequence": "repro.cpu",
    "viterbi_score_batch": "repro.cpu",
    "generic_viterbi_score": "repro.cpu",
    "generic_forward_score": "repro.cpu",
    "generic_backward_score": "repro.cpu",
    # GPU substrate & kernels
    "DeviceSpec": "repro.gpu",
    "KEPLER_K40": "repro.gpu",
    "FERMI_GTX580": "repro.gpu",
    "KernelCounters": "repro.gpu",
    "MemoryConfig": "repro.kernels",
    "Stage": "repro.kernels",
    "msv_warp_kernel": "repro.kernels",
    "viterbi_warp_kernel": "repro.kernels",
    "stage_occupancy": "repro.kernels",
    # pipeline
    "HmmsearchPipeline": "repro.pipeline",
    "Engine": "repro.pipeline",
    "PipelineThresholds": "repro.pipeline",
    "ModelLibrary": "repro.pipeline",
    "OracleReport": "repro.pipeline",
    "Divergence": "repro.pipeline",
    "GuardrailCounters": "repro.scoring",
    "PosteriorDecoding": "repro.cpu.posterior",
    "posterior_decode": "repro.cpu.posterior",
    "domain_regions": "repro.cpu.posterior",
    "viterbi_traceback": "repro.cpu.traceback",
    "ViterbiAlignment": "repro.cpu.traceback",
    "align_to_profile": "repro.cpu.hmmalign",
    # data-plane hardening
    "IngestPolicy": "repro.hardening",
    "PolicyMode": "repro.hardening",
    "STRICT": "repro.hardening",
    "SALVAGE": "repro.hardening",
    "RecordQuarantine": "repro.hardening",
    "QuarantinedRecord": "repro.hardening",
    # errors
    "ReproError": "repro.errors",
    "QuarantineError": "repro.errors",
    "DivergenceError": "repro.errors",
}


def __getattr__(name: str):
    module = _LEGACY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each legacy name once
    return value


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(_LEGACY))
