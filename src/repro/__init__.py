"""repro: a reproduction of "Fine-Grained Acceleration of HMMER 3.0 via
Architecture-Aware Optimization on Massively Parallel Processors"
(Jiang & Ganesan, IPDPSW 2015).

The package contains a from-scratch HMMER 3.0 ``hmmsearch`` engine
(Plan-7 profile HMMs, the quantized MSV and ViterbiFilter scoring
systems, striped SSE baselines, full-precision Forward/Backward, the
filter pipeline with Gumbel/exponential statistics) plus a simulated
SIMT GPU substrate on which the paper's warp-synchronous kernels run
with bit-identical scores, and a mechanistic performance model that
regenerates every figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import sample_hmm, swissprot_like, HmmsearchPipeline

    rng = np.random.default_rng(0)
    hmm = sample_hmm(120, rng)
    db = swissprot_like(500, rng, hmm=hmm)
    results = HmmsearchPipeline(hmm).search(db)
    print(results.summary())
"""

from .alphabet import AMINO, AminoAlphabet, pack_residues, unpack_residues
from .cpu import (
    generic_backward_score,
    generic_forward_score,
    generic_viterbi_score,
    msv_score_batch,
    msv_score_sequence,
    viterbi_score_batch,
    viterbi_score_sequence,
)
from .errors import DivergenceError, QuarantineError, ReproError
from .gpu import FERMI_GTX580, KEPLER_K40, DeviceSpec, KernelCounters
from .hardening import (
    SALVAGE,
    STRICT,
    IngestPolicy,
    PolicyMode,
    QuarantinedRecord,
    RecordQuarantine,
)
from .hmm import (
    NullModel,
    PAPER_MODEL_SIZES,
    Plan7HMM,
    SearchProfile,
    build_hmm_from_msa,
    load_hmm,
    sample_hmm,
    save_hmm,
)
from .kernels import (
    MemoryConfig,
    Stage,
    msv_warp_kernel,
    stage_occupancy,
    viterbi_warp_kernel,
)
from .cpu.hmmalign import align_to_profile
from .cpu.posterior import PosteriorDecoding, domain_regions, posterior_decode
from .cpu.traceback import ViterbiAlignment, viterbi_traceback
from .pipeline import (
    Divergence,
    Engine,
    HmmsearchPipeline,
    ModelLibrary,
    OracleReport,
    PipelineThresholds,
    SearchResults,
)
from .scoring import GuardrailCounters, MSVByteProfile, ViterbiWordProfile
from .sequence import (
    DigitalSequence,
    SequenceDatabase,
    envnr_like,
    read_fasta,
    swissprot_like,
    write_fasta,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # alphabet & sequences
    "AMINO",
    "AminoAlphabet",
    "pack_residues",
    "unpack_residues",
    "DigitalSequence",
    "SequenceDatabase",
    "read_fasta",
    "write_fasta",
    "swissprot_like",
    "envnr_like",
    # models & profiles
    "Plan7HMM",
    "NullModel",
    "SearchProfile",
    "build_hmm_from_msa",
    "sample_hmm",
    "save_hmm",
    "load_hmm",
    "PAPER_MODEL_SIZES",
    "MSVByteProfile",
    "ViterbiWordProfile",
    # engines
    "msv_score_sequence",
    "msv_score_batch",
    "viterbi_score_sequence",
    "viterbi_score_batch",
    "generic_viterbi_score",
    "generic_forward_score",
    "generic_backward_score",
    # GPU substrate & kernels
    "DeviceSpec",
    "KEPLER_K40",
    "FERMI_GTX580",
    "KernelCounters",
    "MemoryConfig",
    "Stage",
    "msv_warp_kernel",
    "viterbi_warp_kernel",
    "stage_occupancy",
    # pipeline
    "HmmsearchPipeline",
    "Engine",
    "PipelineThresholds",
    "SearchResults",
    "ModelLibrary",
    "OracleReport",
    "Divergence",
    "GuardrailCounters",
    "PosteriorDecoding",
    "posterior_decode",
    "domain_regions",
    "viterbi_traceback",
    "ViterbiAlignment",
    "align_to_profile",
    # data-plane hardening
    "IngestPolicy",
    "PolicyMode",
    "STRICT",
    "SALVAGE",
    "RecordQuarantine",
    "QuarantinedRecord",
    # errors
    "ReproError",
    "QuarantineError",
    "DivergenceError",
]
