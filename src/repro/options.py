"""Consolidated search configuration: :class:`SearchOptions`.

PRs 1-3 accreted search behaviour onto keyword arguments
(``selfcheck=``, ``guard=``, ``policy=``, fault/journal kwargs); this
module replaces that with one frozen options object accepted by
:meth:`HmmsearchPipeline.search`, :class:`~repro.service.Scheduler` and
:class:`~repro.service.BatchSearchService`.  Legacy keyword arguments
keep working through a single shim, :func:`resolve_search_options`,
which folds them into a :class:`SearchOptions` and emits one
``DeprecationWarning`` per call.

:class:`Engine` and :class:`PipelineThresholds` are *defined* here (and
re-exported from :mod:`repro.pipeline.pipeline`, their historical home)
so that the options object, the pipeline and the service can all share
them without an import cycle.

Every field carries a ``doc`` metadata string; :func:`field_doc` feeds
the CLI, whose ``--selfcheck``/``--strict|--salvage``/``--trace`` help
text is generated from these docs so the flags and the API cannot
drift apart.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from . import engines
from .engines import EngineSelection
from .errors import PipelineError
from .gpu.device import KEPLER_K40, DeviceSpec
from .hardening import STRICT, IngestPolicy, RecordQuarantine
from .kernels.memconfig import MemoryConfig
from .obs.span import Tracer

__all__ = [
    "Engine",
    "PipelineThresholds",
    "SearchOptions",
    "field_doc",
    "resolve_search_options",
    "UNSET",
]


class Engine:
    """Deprecated closed engine enum, now a shim over the registry.

    ``Engine.CPU_SSE`` / ``Engine.GPU_WARP`` are the interned
    :class:`~repro.engines.EngineSelection` objects for those engines,
    so historical identity checks (``opts.engine is Engine.GPU_WARP``)
    and ``.value`` reads keep working.  New code should pass registered
    engine names (or per-stage mappings) straight to
    ``SearchOptions(engine=...)`` and use :func:`repro.engines.resolve`
    / :func:`repro.engines.list_engines` instead.
    """

    CPU_SSE = engines.resolve("cpu_sse")
    GPU_WARP = engines.resolve("gpu_warp")

    def __init__(self) -> None:  # pragma: no cover - guard, not API
        raise TypeError(
            "Engine is a namespace shim over repro.engines; use "
            "Engine.CPU_SSE / Engine.GPU_WARP or engines.resolve(name)"
        )

    @classmethod
    def coerce(cls, value: "EngineSelection | str") -> EngineSelection:
        """Deprecated: accept an engine name/alias/selection.

        Kept for pre-registry call sites; emits one
        ``DeprecationWarning`` and delegates to
        :func:`repro.engines.resolve`, so every registered engine (not
        just the historical two) resolves.
        """
        warnings.warn(
            "Engine.coerce is deprecated; use repro.engines.resolve "
            "(the engine registry) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return engines.resolve(value)


@dataclass(frozen=True)
class PipelineThresholds:
    """Stage P-value thresholds and the reporting E-value cutoff."""

    f1: float = 0.02    # MSV
    f2: float = 1e-3    # P7Viterbi
    f3: float = 1e-5    # Forward
    report_evalue: float = 10.0

    def __post_init__(self) -> None:
        for name, v in (("f1", self.f1), ("f2", self.f2), ("f3", self.f3)):
            if not 0.0 < v <= 1.0:
                raise PipelineError(f"threshold {name} must be in (0, 1]")


@dataclass(frozen=True)
class SearchOptions:
    """Everything configurable about running one search.

    Frozen so it can be shared across jobs, used as a default, and
    varied with :func:`dataclasses.replace`.  The contained tracer and
    quarantine are mutable collectors by design - the options object
    only decides *whether* they are fed.
    """

    engine: EngineSelection = field(
        default=Engine.CPU_SSE,
        metadata={"doc": "scoring engine for the MSV and P7Viterbi "
                         "stages: any registered engine name "
                         "(repro.engines.list_engines(); e.g. cpu_sse, "
                         "gpu_warp, gpu_warp_batched, mp) or a "
                         "per-stage mapping like "
                         "msv=gpu_warp_batched,p7viterbi=mp "
                         "('*' keys the default stage engine)"},
    )
    device: DeviceSpec = field(
        default=KEPLER_K40,
        metadata={"doc": "simulated device for single-device GPU "
                         "dispatch (service jobs use the pool instead)"},
    )
    config: MemoryConfig = field(
        default=MemoryConfig.SHARED,
        metadata={"doc": "where kernel emission scores notionally live "
                         "(shared/global); results are identical, only "
                         "the charged memory traffic differs"},
    )
    thresholds: PipelineThresholds | None = field(
        default=None,
        metadata={"doc": "per-search stage P-value thresholds; None "
                         "uses the pipeline's calibrated defaults"},
    )
    alignments: bool = field(
        default=False,
        metadata={"doc": "attach the optimal Viterbi alignment to every "
                         "reported hit"},
    )
    selfcheck: int = field(
        default=0,
        metadata={"doc": "shadow-score N sampled sequences per search "
                         "through the scalar reference engines "
                         "(differential oracle; 0 = off)"},
    )
    guard: bool = field(
        default=True,
        metadata={"doc": "tally numerical guardrail events (u8/i16 "
                         "saturations, overflows, non-finite scores) "
                         "per stage"},
    )
    policy: IngestPolicy = field(
        default=STRICT,
        metadata={"doc": "strict fails fast on malformed records or "
                         "divergences; salvage skips-and-quarantines "
                         "them instead of aborting"},
    )
    quarantine: RecordQuarantine | None = field(
        default=None,
        metadata={"doc": "where salvage mode deposits skipped records "
                         "(the service wires its metrics-owned "
                         "quarantine here)"},
    )
    tracer: Tracer | None = field(
        default=None,
        metadata={"doc": "record nested job/stage/kernel spans with "
                         "timings and counters into this tracer "
                         "(None = tracing off, zero overhead)"},
    )
    sanitize: bool = field(
        default=False,
        metadata={"doc": "arm the warp-model sanitizer for GPU kernel "
                         "launches (bank conflicts, read-before-write "
                         "hazards, inactive-lane garbage); the report "
                         "lands on each stage's KernelCounters; the "
                         "REPRO_SANITIZE env var arms it globally"},
    )
    deadline_ms: float | None = field(
        default=None,
        metadata={"doc": "per-job time budget in modelled milliseconds; "
                         "the budget is decremented through every retry "
                         "backoff and injected stall, and an expired job "
                         "fails fast with DeadlineExceeded (exit code 5) "
                         "instead of burning devices (None = no deadline)"},
    )
    mp_workers: int = field(
        default=2,
        metadata={"doc": "worker-process count for the mp engine; 1 "
                         "scores inline in this process (hits are "
                         "bit-identical for every worker count)"},
    )
    mp_inner_engine: str = field(
        default="gpu_warp_batched",
        metadata={"doc": "registered engine each mp worker runs on its "
                         "shard (anything but mp itself)"},
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", engines.resolve(self.engine))
        if self.selfcheck < 0:
            raise PipelineError("selfcheck must be >= 0")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise PipelineError("deadline_ms must be positive")
        if self.mp_workers < 1:
            raise PipelineError("mp_workers must be >= 1")
        inner = engines.get(self.mp_inner_engine).name
        if inner == "mp":
            raise PipelineError("mp_inner_engine cannot be 'mp' itself")
        object.__setattr__(self, "mp_inner_engine", inner)

    def with_(self, **changes) -> "SearchOptions":
        """A copy with the given fields replaced (ergonomic alias)."""
        return replace(self, **changes)


def field_doc(name: str) -> str:
    """The documented meaning of one :class:`SearchOptions` field.

    The CLI builds its flag help text from these strings.
    """
    try:
        f = SearchOptions.__dataclass_fields__[name]
    except KeyError:
        raise PipelineError(
            f"SearchOptions has no field {name!r}"
        ) from None
    return f.metadata["doc"]


#: Sentinel distinguishing "not passed" from an explicit None/False.
UNSET = object()


def resolve_search_options(
    options: SearchOptions | None,
    where: str,
    stacklevel: int = 3,
    **legacy,
) -> SearchOptions:
    """The one deprecation shim for legacy per-kwarg call sites.

    ``legacy`` maps field names to values or :data:`UNSET`.  Supplied
    legacy kwargs emit a single ``DeprecationWarning`` naming the call
    site and every offending argument, then override the corresponding
    fields of ``options`` (or of a default :class:`SearchOptions`).
    """
    supplied = {k: v for k, v in legacy.items() if v is not UNSET}
    if supplied:
        names = ", ".join(sorted(supplied))
        warnings.warn(
            f"passing {names} to {where} as keyword argument(s) is "
            f"deprecated; pass options=SearchOptions({names}=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    base = options if options is not None else SearchOptions()
    return replace(base, **supplied) if supplied else base
