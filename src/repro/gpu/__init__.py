"""Simulated SIMT GPU substrate: devices, warps, occupancy, timing."""

from .counters import KernelCounters
from .device import FERMI_GTX580, KEPLER_K40, DeviceSpec
from .multi_gpu import MultiGpuRun, run_multi_gpu
from .occupancy import KernelResources, Occupancy, best_occupancy, occupancy
from .shared_memory import transactions_for_access
from .warp import (
    WARP_SIZE,
    lane_ids,
    shfl_down,
    shfl_up,
    shfl_xor,
    vote_all,
    vote_any,
)

__all__ = [
    "DeviceSpec",
    "KEPLER_K40",
    "FERMI_GTX580",
    "KernelCounters",
    "MultiGpuRun",
    "run_multi_gpu",
    "KernelResources",
    "Occupancy",
    "occupancy",
    "best_occupancy",
    "transactions_for_access",
    "WARP_SIZE",
    "lane_ids",
    "shfl_xor",
    "shfl_up",
    "shfl_down",
    "vote_all",
    "vote_any",
]
