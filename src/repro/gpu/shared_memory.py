"""Shared-memory bank-conflict model.

Shared memory on Fermi/Kepler is divided into 32 banks of 4-byte words;
a warp's access is serialized into as many transactions as the worst
bank's number of *distinct words* touched (accesses to sub-words of the
same 4-byte word are broadcast within one transaction).

The paper's "Intrinsic Conflict-Free Access" (Section III.A) lays byte
DP cells out consecutively so each group of four lanes reads one word
from one bank; :func:`transactions_for_access` lets tests verify that
claim quantitatively and lets the counters charge conflicted patterns.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError

__all__ = ["transactions_for_access", "byte_row_addresses"]

_WORD = 4


def transactions_for_access(byte_addresses: np.ndarray, banks: int = 32) -> int:
    """Number of shared-memory transactions for one warp access.

    Parameters
    ----------
    byte_addresses:
        Byte address accessed by each lane (any number of lanes; inactive
        lanes should be omitted by the caller).
    banks:
        Bank count (32 on every architecture modelled here).
    """
    addr = np.asarray(byte_addresses, dtype=np.int64)
    if addr.ndim != 1:
        raise KernelError("expected a 1-D array of per-lane byte addresses")
    if addr.size == 0:
        return 0
    if np.any(addr < 0):
        raise KernelError("byte addresses must be non-negative")
    words = addr // _WORD
    bank = words % banks
    transactions = 0
    for b in np.unique(bank):
        transactions += len(np.unique(words[bank == b]))
    return int(transactions)


def byte_row_addresses(base: int, lane_offsets: np.ndarray) -> np.ndarray:
    """Byte addresses of a warp accessing ``base + offsets`` (helper)."""
    off = np.asarray(lane_offsets, dtype=np.int64)
    return base + off
