"""Hardware event counters collected by the simulated kernels.

Counters serve two purposes: they let the test suite verify the paper's
structural claims (the warp-synchronous kernels issue **zero**
``__syncthreads``; the conflict-free layout causes zero bank-conflict
extra transactions; Lazy-F rarely needs a second pass), and they feed the
ablation benchmarks with measured event counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # avoid a runtime cycle with repro.analysis.sanitizer
    from ..analysis.sanitizer import SanitizerReport

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Mutable event tally for one simulated kernel execution."""

    rows: int = 0                 # DP rows processed (one per residue)
    strips: int = 0               # 32-wide strip iterations
    cells: int = 0                # DP cells updated
    shared_loads: int = 0         # shared-memory load transactions
    shared_stores: int = 0        # shared-memory store transactions
    bank_conflict_extra: int = 0  # transactions beyond the conflict-free count
    global_bytes: int = 0         # global-memory traffic (bytes)
    shuffles: int = 0             # warp-shuffle operations
    votes: int = 0                # warp-vote operations
    syncthreads: int = 0          # block-wide barriers issued
    lazyf_rows_checked: int = 0   # rows that entered the Lazy-F procedure
    lazyf_passes: int = 0         # total Lazy-F sweep passes executed
    lazyf_extra_passes: int = 0   # passes beyond the first, i.e. real D-D work
    sequences: int = 0            # sequences scored
    saturations: int = 0          # DP cells clipped by a saturating add
    grid_cells: int = 0           # lane-rows launched by batched kernels
    padding_cells: int = 0        # launched lane-rows holding no residue
    # attached by kernels running under REPRO_SANITIZE / sanitize=True;
    # not an event tally, so excluded from as_dict() and the int merge
    sanitizer: Optional["SanitizerReport"] = None

    @property
    def padding_fraction(self) -> float:
        """Fraction of launched lane-rows wasted on padding.

        The cross-sequence batched kernels pack length-sorted sequences
        across warp lanes; length bucketing bounds this waste (see
        ``docs/engines.md``).  0.0 when no batched kernel ran.
        """
        if self.grid_cells == 0:
            return 0.0
        return self.padding_cells / self.grid_cells

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Accumulate another counter set into this one (returns self)."""
        for name in self.__dataclass_fields__:
            if name == "sanitizer":
                continue
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if other.sanitizer is not None:
            self.sanitizer = (
                other.sanitizer
                if self.sanitizer is None
                else self.sanitizer.merge(other.sanitizer)
            )
        return self

    def as_dict(self) -> dict[str, int]:
        return {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "sanitizer"
        }

    def attach_sanitizer(self, report: "SanitizerReport") -> None:
        """Attach (or merge in) one kernel launch's sanitizer report."""
        self.sanitizer = (
            report if self.sanitizer is None else self.sanitizer.merge(report)
        )

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        if self.sanitizer is not None:
            status = "clean" if self.sanitizer.clean else "VIOLATIONS"
            parts = f"{parts}, sanitizer={status}" if parts else f"sanitizer={status}"
        return f"KernelCounters({parts})"
