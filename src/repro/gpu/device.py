"""Device models of the GPUs the paper evaluates on.

A :class:`DeviceSpec` captures exactly the per-SM resource limits and
throughput figures the paper's optimizations interact with: warp slots,
register file, shared memory, warp-shuffle availability (Kepler yes,
Fermi no - Section IV.A), clock and memory bandwidth.  The occupancy
calculator (:mod:`repro.gpu.occupancy`) and the timing model
(:mod:`repro.gpu.timing`) are parameterized by these specs, so swapping
K40 for GTX 580 changes behaviour mechanistically rather than through
hand-tuned curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LaunchError

__all__ = ["DeviceSpec", "KEPLER_K40", "FERMI_GTX580"]


@dataclass(frozen=True)
class DeviceSpec:
    """Resource and throughput description of one GPU.

    All "per_sm" quantities are per streaming multiprocessor (SM on
    Fermi, SMX on Kepler, paper Figure 8).
    """

    name: str
    architecture: str                 # "kepler" | "fermi"
    sm_count: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    registers_per_sm: int             # 32-bit registers
    max_registers_per_thread: int
    shared_mem_per_sm: int            # bytes
    shared_mem_per_block: int         # bytes
    shared_mem_banks: int
    has_warp_shuffle: bool            # inter-thread register exchange
    dual_issue: bool                  # dual instruction dispatch per scheduler
    clock_ghz: float
    mem_bandwidth_gbs: float          # global memory, GB/s
    reg_alloc_granularity: int = 256  # register-file allocation rounding

    def __post_init__(self) -> None:
        if self.sm_count < 1 or self.max_warps_per_sm < 1:
            raise LaunchError("device must have at least one SM and warp slot")
        if self.shared_mem_per_block > self.shared_mem_per_sm:
            raise LaunchError("per-block shared memory cannot exceed per-SM")

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * 32

    @property
    def peak_bytes_per_cycle(self) -> float:
        """Global-memory bytes per core cycle, device-wide."""
        return self.mem_bandwidth_gbs / self.clock_ghz

    def __repr__(self) -> str:
        return f"DeviceSpec({self.name!r}, {self.architecture}, {self.sm_count} SMs)"


#: NVIDIA Tesla K40 (GK110B), the paper's single-GPU platform.
KEPLER_K40 = DeviceSpec(
    name="Tesla K40",
    architecture="kepler",
    sm_count=15,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    shared_mem_banks=32,
    has_warp_shuffle=True,
    dual_issue=True,
    clock_ghz=0.745,
    mem_bandwidth_gbs=288.0,
)

#: NVIDIA GTX 580 (GF110), the paper's multi-GPU (4x) platform.
FERMI_GTX580 = DeviceSpec(
    name="GTX 580",
    architecture="fermi",
    sm_count=16,
    max_warps_per_sm=48,
    max_blocks_per_sm=8,
    max_threads_per_block=1024,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    shared_mem_banks=32,
    has_warp_shuffle=False,
    dual_issue=False,
    clock_ghz=1.544,
    mem_bandwidth_gbs=192.0,
)
