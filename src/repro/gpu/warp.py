"""Warp-level SIMT primitives (lockstep semantics, vectorized over warps).

A warp is modelled as the trailing axis of length 32 of a NumPy array, so
``(n_warps, 32)`` states execute in lockstep - precisely the property the
paper's warp-synchronous kernels rely on ("every 32 threads within a
thread-warp are always executed synchronously", Section III.A).  The
primitives mirror the CUDA intrinsics the paper uses:

* ``shfl_xor`` - butterfly exchange (``__shfl_xor``), Kepler compute 3.x;
* ``shfl_up`` / ``shfl_down`` - neighbour exchange;
* ``vote_all`` / ``vote_any`` - warp votes (``__all`` / ``__any``),
  used by the parallel Lazy-F loop (paper Figure 7).
"""

from __future__ import annotations

import numpy as np

from ..constants import WARP_SIZE
from ..errors import KernelError

__all__ = [
    "WARP_SIZE",
    "lane_ids",
    "conflict_free_lane_stride",
    "shfl_xor",
    "shfl_up",
    "shfl_down",
    "vote_all",
    "vote_any",
]


def _check_warp_axis(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim == 0 or arr.shape[-1] != WARP_SIZE:
        raise KernelError(
            f"warp primitives need a trailing axis of {WARP_SIZE} lanes, "
            f"got shape {arr.shape}"
        )
    return arr


def lane_ids() -> np.ndarray:
    """``threadIdx.x`` within a warp: 0..31."""
    return np.arange(WARP_SIZE)


def conflict_free_lane_stride(row_bytes: int) -> int:
    """Smallest conflict-free lane-major row stride >= ``row_bytes``.

    For lane-per-sequence layouts (the cross-sequence batched kernels)
    lane ``l``'s cell ``j`` lives at byte ``l * stride + j * itemsize``;
    a warp touching cell ``j`` across all 32 lanes is conflict-free iff
    the stride maps lanes to 32 distinct banks.  With 4-byte words and
    32 banks that holds exactly when ``stride = 4 * s`` with ``s`` odd
    (``s`` invertible mod 32), so this returns the smallest such stride
    - the simulator analog of padding a shared-memory array row.
    """
    if row_bytes < 1:
        raise KernelError("row_bytes must be >= 1")
    s = -(-row_bytes // 4)
    if s % 2 == 0:
        s += 1
    return 4 * s


def shfl_xor(values: np.ndarray, lane_mask: int) -> np.ndarray:
    """``__shfl_xor``: lane ``z`` receives the value of lane ``z ^ mask``."""
    arr = _check_warp_axis(values)
    if not 0 <= lane_mask < WARP_SIZE:
        raise KernelError(f"lane_mask must be in 0..{WARP_SIZE - 1}")
    return arr[..., lane_ids() ^ lane_mask]


def shfl_up(values: np.ndarray, delta: int, fill=None) -> np.ndarray:
    """``__shfl_up``: lane ``z`` receives lane ``z - delta``.

    Hardware leaves the low ``delta`` lanes unchanged; pass ``fill`` to
    override them (convenient for boundary sentinels).
    """
    arr = _check_warp_axis(values)
    if not 0 <= delta < WARP_SIZE:
        raise KernelError(f"delta must be in 0..{WARP_SIZE - 1}")
    out = arr.copy()
    if delta:
        out[..., delta:] = arr[..., :-delta]
        if fill is not None:
            out[..., :delta] = fill
    return out


def shfl_down(values: np.ndarray, delta: int, fill=None) -> np.ndarray:
    """``__shfl_down``: lane ``z`` receives lane ``z + delta``."""
    arr = _check_warp_axis(values)
    if not 0 <= delta < WARP_SIZE:
        raise KernelError(f"delta must be in 0..{WARP_SIZE - 1}")
    out = arr.copy()
    if delta:
        out[..., :-delta] = arr[..., delta:]
        if fill is not None:
            out[..., -delta:] = fill
    return out


def vote_all(predicate: np.ndarray) -> np.ndarray:
    """``__all``: True when every lane's predicate holds (per warp)."""
    return _check_warp_axis(predicate).all(axis=-1)


def vote_any(predicate: np.ndarray) -> np.ndarray:
    """``__any``: True when any lane's predicate holds (per warp)."""
    return _check_warp_axis(predicate).any(axis=-1)
