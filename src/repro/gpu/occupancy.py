"""CUDA occupancy calculator.

Occupancy is "the ratio of the total number of resident threads (warps)
and the maximum theoretical number of threads per multiprocessor" (paper
Figure 9 caption).  Resident blocks per SM are limited by four resources;
the binding one determines the occupancy cliff that drives every
performance curve in the paper:

* warp slots              (``max_warps_per_sm``),
* the register file       (``registers_per_thread`` x threads, rounded to
  the allocation granularity),
* shared memory           (``smem_per_block``),
* the block-count limit   (``max_blocks_per_sm``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LaunchError
from .device import DeviceSpec

__all__ = ["KernelResources", "Occupancy", "occupancy", "best_occupancy"]


@dataclass(frozen=True)
class KernelResources:
    """Per-launch resource usage of a kernel."""

    registers_per_thread: int
    shared_mem_per_block: int  # bytes
    warps_per_block: int

    def __post_init__(self) -> None:
        if self.registers_per_thread < 1:
            raise LaunchError("registers_per_thread must be positive")
        if self.shared_mem_per_block < 0:
            raise LaunchError("shared memory cannot be negative")
        if self.warps_per_block < 1:
            raise LaunchError("warps_per_block must be positive")

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * 32


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one launch configuration."""

    device: DeviceSpec
    resources: KernelResources
    blocks_per_sm: int
    limiting_factor: str  # "warps" | "registers" | "shared_mem" | "blocks" | "infeasible"

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.resources.warps_per_block

    @property
    def occupancy(self) -> float:
        return self.warps_per_sm / self.device.max_warps_per_sm

    @property
    def feasible(self) -> bool:
        return self.blocks_per_sm >= 1


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


def occupancy(device: DeviceSpec, resources: KernelResources) -> Occupancy:
    """Occupancy of a kernel launch on a device.

    Returns a result with ``blocks_per_sm == 0`` (infeasible) when a
    single block already exceeds a per-block limit - e.g. a shared-memory
    configuration whose model does not fit, which is how "models of size
    1528 could be accommodated within the shared memory" and larger ones
    cannot (paper Section IV).
    """
    res = resources
    if (
        res.threads_per_block > device.max_threads_per_block
        or res.shared_mem_per_block > device.shared_mem_per_block
        or res.registers_per_thread > device.max_registers_per_thread
    ):
        return Occupancy(device, res, 0, "infeasible")

    by_warps = device.max_warps_per_sm // res.warps_per_block
    regs_per_block = _round_up(
        res.registers_per_thread * res.threads_per_block,
        device.reg_alloc_granularity,
    )
    by_regs = device.registers_per_sm // regs_per_block
    by_smem = (
        device.shared_mem_per_sm // res.shared_mem_per_block
        if res.shared_mem_per_block > 0
        else device.max_warps_per_sm + 1  # unconstrained
    )
    by_blocks = device.max_blocks_per_sm

    limits = {
        "warps": by_warps,
        "registers": by_regs,
        "shared_mem": by_smem,
        "blocks": by_blocks,
    }
    factor = min(limits, key=limits.get)  # type: ignore[arg-type]
    blocks = limits[factor]
    if blocks < 1:
        return Occupancy(device, res, 0, "infeasible")
    return Occupancy(device, res, int(blocks), factor)


def best_occupancy(
    device: DeviceSpec,
    registers_per_thread: int,
    smem_for_warps,
    candidates: tuple[int, ...] = (2, 4, 8, 16, 32),
) -> Occupancy | None:
    """Pick the warps-per-block count that maximizes occupancy.

    ``smem_for_warps(w)`` must return the per-block shared-memory bytes
    for ``w`` warps per block.  Returns None when no candidate fits (the
    launch is infeasible on this device, e.g. shared-memory configuration
    with a very large model).  Ties prefer fewer warps per block (smaller
    blocks schedule more flexibly).
    """
    best: Occupancy | None = None
    for w in candidates:
        if w * 32 > device.max_threads_per_block:
            continue
        res = KernelResources(
            registers_per_thread=registers_per_thread,
            shared_mem_per_block=int(smem_for_warps(w)),
            warps_per_block=w,
        )
        if res.registers_per_thread > device.max_registers_per_thread:
            continue
        occ = occupancy(device, res)
        if not occ.feasible:
            continue
        if best is None or occ.warps_per_sm > best.warps_per_sm:
            best = occ
    return best
