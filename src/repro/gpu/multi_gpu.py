"""Functional multi-GPU execution: partition, run per device, merge.

The performance side of the paper's multi-GPU experiment lives in
:mod:`repro.perf.speedup`; this module is the *functional* counterpart:
it actually partitions a database by residue share
(:meth:`~repro.sequence.database.SequenceDatabase.chunk_by_residues`),
runs a kernel per (simulated) device on its chunk, merges the scores
back into database order, and keeps per-device event counters - so the
equivalence "multi-GPU == single-GPU == CPU reference" is testable, and
the per-device work split is observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import LaunchError
from ..sequence.database import SequenceDatabase
from ..cpu.results import FilterScores
from .counters import KernelCounters
from .device import DeviceSpec, FERMI_GTX580

__all__ = ["MultiGpuRun", "run_multi_gpu"]


@dataclass
class MultiGpuRun:
    """Merged scores plus per-device accounting."""

    scores: FilterScores
    device_counters: list[KernelCounters] = field(default_factory=list)
    chunk_residues: list[int] = field(default_factory=list)

    @property
    def device_count(self) -> int:
        return len(self.device_counters)

    def residue_balance(self) -> float:
        """max/mean residue share across devices (1.0 = perfect)."""
        shares = np.asarray(self.chunk_residues, dtype=float)
        return float(shares.max() / shares.mean())


def run_multi_gpu(
    kernel: Callable[..., FilterScores],
    profile,
    database: SequenceDatabase,
    device: DeviceSpec = FERMI_GTX580,
    device_count: int = 4,
    **kernel_kwargs,
) -> MultiGpuRun:
    """Score a database across several simulated devices.

    Parameters
    ----------
    kernel:
        A warp kernel (:func:`~repro.kernels.msv_warp_kernel` or
        :func:`~repro.kernels.viterbi_warp_kernel`); it receives each
        device's chunk plus ``device=`` and a fresh ``counters=``.
    device_count:
        How many identical devices share the database.
    """
    if device_count < 1:
        raise LaunchError("device_count must be positive")
    if device_count > len(database):
        raise LaunchError(
            f"cannot spread {len(database)} sequences over "
            f"{device_count} devices"
        )
    chunks = database.chunk_by_residues(device_count)
    scores = np.empty(len(database), dtype=np.float64)
    overflowed = np.empty(len(database), dtype=bool)
    counters: list[KernelCounters] = []
    offset = 0
    residues = []
    for chunk in chunks:
        c = KernelCounters()
        part = kernel(
            profile, chunk, device=device, counters=c, **kernel_kwargs
        )
        n = len(chunk)
        scores[offset : offset + n] = part.scores
        overflowed[offset : offset + n] = part.overflowed
        offset += n
        counters.append(c)
        residues.append(chunk.total_residues)
    return MultiGpuRun(
        scores=FilterScores(scores=scores, overflowed=overflowed),
        device_counters=counters,
        chunk_residues=residues,
    )
