"""Functional multi-GPU execution: partition, run per device, merge.

The performance side of the paper's multi-GPU experiment lives in
:mod:`repro.perf.speedup`; this module is the *functional* counterpart:
it actually partitions a database by residue share
(:meth:`~repro.sequence.database.SequenceDatabase.chunk_by_residues`),
runs a kernel per (simulated) device on its chunk, merges the scores
back into database order, and keeps per-device event counters - so the
equivalence "multi-GPU == single-GPU == CPU reference" is testable, and
the per-device work split is observable.

Two serving-oriented capabilities layer on top of the basic split:

* **Heterogeneous pools** - pass ``devices=[spec, spec, ...]`` to run
  each chunk on its own :class:`~repro.gpu.device.DeviceSpec` (e.g. a
  mixed Kepler + Fermi pool); scores are engine-invariant, only the
  event counters differ per architecture.
* **Graceful degradation** - when the pool is larger than the database,
  only ``len(database)`` devices receive work and the rest are recorded
  as idle (:attr:`MultiGpuRun.idle_devices`) instead of failing the
  launch; a fixed service pool must survive tiny databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import LaunchError, SequenceError
from ..obs.profiling import kernel_tags, record_kernel_counters
from ..obs.span import span
from ..sequence.database import SequenceDatabase
from ..cpu.results import FilterScores
from .counters import KernelCounters
from .device import DeviceSpec, FERMI_GTX580

__all__ = ["MultiGpuRun", "run_multi_gpu", "score_chunk"]


@dataclass
class MultiGpuRun:
    """Merged scores plus per-device accounting."""

    scores: FilterScores
    device_counters: list[KernelCounters] = field(default_factory=list)
    chunk_residues: list[int] = field(default_factory=list)
    chunk_sequences: list[int] = field(default_factory=list)
    idle_devices: int = 0

    @property
    def device_count(self) -> int:
        """Devices that actually received work."""
        return len(self.device_counters)

    def residue_balance(self) -> float:
        """max/mean residue share across active devices (1.0 = perfect).

        Degenerate runs - no active devices, or chunks of all-empty
        sequences - report perfect balance (1.0) rather than dividing
        by an empty or zero mean.
        """
        shares = np.asarray(self.chunk_residues, dtype=float)
        if shares.size == 0 or shares.sum() == 0.0:
            return 1.0
        return float(shares.max() / shares.mean())


def score_chunk(
    kernel: Callable[..., FilterScores],
    profile,
    chunk: SequenceDatabase,
    spec: DeviceSpec,
    *,
    sort: bool = False,
    counters: KernelCounters | None = None,
    **kernel_kwargs,
) -> FilterScores:
    """Score one device's chunk, returning scores in chunk order.

    The single-shard primitive shared by :func:`run_multi_gpu` and the
    service's resilient dispatcher: with ``sort=True`` the chunk is
    length-sorted (descending, the warp load-balance heuristic) before
    the kernel runs, and the scores are scattered back so the caller
    always sees chunk order.
    """
    c = counters if counters is not None else KernelCounters()
    n = len(chunk)
    if sort:
        order = np.argsort(np.asarray(chunk.lengths), kind="stable")[::-1]
        part = kernel(
            profile,
            chunk.subset(order.tolist()),
            device=spec,
            counters=c,
            **kernel_kwargs,
        )
        scores = np.empty(n, dtype=np.float64)
        overflowed = np.empty(n, dtype=bool)
        scores[order] = part.scores
        overflowed[order] = part.overflowed
        return FilterScores(scores=scores, overflowed=overflowed)
    return kernel(profile, chunk, device=spec, counters=c, **kernel_kwargs)


def run_multi_gpu(
    kernel: Callable[..., FilterScores],
    profile,
    database: SequenceDatabase,
    device: DeviceSpec = FERMI_GTX580,
    device_count: int = 4,
    devices: Sequence[DeviceSpec] | None = None,
    sort_chunks: bool = False,
    tracer=None,
    stage: str | None = None,
    **kernel_kwargs,
) -> MultiGpuRun:
    """Score a database across several simulated devices.

    Parameters
    ----------
    kernel:
        A warp kernel (:func:`~repro.kernels.msv_warp_kernel` or
        :func:`~repro.kernels.viterbi_warp_kernel`); it receives each
        device's chunk plus ``device=`` and a fresh ``counters=``.
    device_count:
        How many identical ``device`` instances share the database.
    devices:
        Explicit per-device specs (a possibly heterogeneous pool);
        overrides ``device``/``device_count``.
    sort_chunks:
        Length-sort each chunk (descending) before scoring - the warp
        load-balance heuristic - and scatter the scores back to chunk
        order, so merged results stay in database order.
    tracer:
        Optional :class:`~repro.obs.span.Tracer`: each device's chunk
        records a ``shard`` span containing a ``kernel`` span stamped
        with the launch's counters, occupancy and memory config.
    stage:
        Pipeline stage name (``msv``/``p7viterbi``) for the kernel
        span's occupancy tag; inferred spans are unnamed without it.

    When the pool is larger than the database, only ``len(database)``
    devices receive chunks; the surplus is reported via
    :attr:`MultiGpuRun.idle_devices` rather than raised as an error.
    """
    if len(database) == 0:
        raise SequenceError(
            "cannot dispatch an empty database across devices: "
            "at least one sequence is required"
        )
    if devices is None:
        if device_count < 1:
            raise LaunchError("device_count must be positive")
        devices = [device] * device_count
    elif len(devices) < 1:
        raise LaunchError("device pool must contain at least one device")
    n_active = min(len(devices), len(database))
    idle = len(devices) - n_active
    chunks = database.chunk_by_residues(n_active)
    scores = np.empty(len(database), dtype=np.float64)
    overflowed = np.empty(len(database), dtype=bool)
    counters: list[KernelCounters] = []
    offset = 0
    residues = []
    sequences = []
    stage_name = stage or getattr(kernel, "__name__", "kernel")
    for shard_no, (chunk, spec) in enumerate(zip(chunks, devices)):
        c = KernelCounters()
        n = len(chunk)
        with span(
            tracer, f"shard{shard_no}", "shard",
            device=spec.name, stage=stage,
        ) as sh:
            with span(
                tracer, f"{stage_name}@{spec.name}", "kernel",
                **kernel_tags(
                    stage_name, getattr(profile, "M", 0),
                    kernel_kwargs.get("config"), spec,
                ),
            ) as ks:
                part = score_chunk(
                    kernel, profile, chunk, spec,
                    sort=sort_chunks, counters=c, **kernel_kwargs,
                )
                record_kernel_counters(ks, c)
            if sh is not None:
                sh.count(sequences=n, residues=chunk.total_residues)
        scores[offset : offset + n] = part.scores
        overflowed[offset : offset + n] = part.overflowed
        offset += n
        counters.append(c)
        residues.append(chunk.total_residues)
        sequences.append(n)
    return MultiGpuRun(
        scores=FilterScores(scores=scores, overflowed=overflowed),
        device_counters=counters,
        chunk_residues=residues,
        chunk_sequences=sequences,
        idle_devices=idle,
    )
