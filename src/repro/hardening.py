"""Data-plane hardening: the strict/salvage ingest policy and quarantine.

The device plane (:mod:`repro.service.resilience`) survives bad
*hardware*; this module is the matching contract for bad *data*.  Every
parser (:func:`repro.sequence.fasta.read_fasta`,
:func:`repro.sequence.stockholm.parse_stockholm_text`,
:func:`repro.hmm.hmmfile.load_hmm`) and the pipeline's differential
oracle accept an :class:`IngestPolicy`:

* **strict** (the default, and exactly the pre-hardening behaviour):
  the first malformed record raises
  :class:`~repro.errors.FormatError` / :class:`~repro.errors.DivergenceError`
  and the run aborts;
* **salvage**: malformed records are *skipped and quarantined* - each
  one recorded as a :class:`QuarantinedRecord` carrying its source file,
  line number, record name and reason - and the run continues over the
  surviving records.

Quarantines accumulate in a :class:`RecordQuarantine`, which the batch
service's :class:`~repro.service.metrics.MetricsRegistry` owns and
renders in its report.  Salvage is never silent: an input whose records
were *all* quarantined, or whose quarantined fraction exceeds the
policy's ``max_quarantine_fraction``, raises
:class:`~repro.errors.QuarantineError` - a half-empty batch completing
quietly is its own kind of corruption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import QuarantineError

__all__ = [
    "PolicyMode",
    "IngestPolicy",
    "STRICT",
    "SALVAGE",
    "QuarantinedRecord",
    "RecordQuarantine",
]


class PolicyMode(enum.Enum):
    """How the data plane reacts to a malformed record."""

    STRICT = "strict"
    SALVAGE = "salvage"


@dataclass(frozen=True)
class IngestPolicy:
    """Strict/salvage knob shared by every parser and the oracle.

    ``max_quarantine_fraction`` bounds how much of an input salvage mode
    may silently drop: quarantining strictly more than that fraction of
    a file's records raises :class:`~repro.errors.QuarantineError`
    (1.0 = any number of records may be dropped, but never all of them).
    """

    mode: PolicyMode = PolicyMode.STRICT
    max_quarantine_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.max_quarantine_fraction <= 1.0:
            raise QuarantineError(
                "max_quarantine_fraction must be in (0, 1], got "
                f"{self.max_quarantine_fraction}"
            )

    @property
    def salvage(self) -> bool:
        return self.mode is PolicyMode.SALVAGE

    @classmethod
    def strict(cls) -> "IngestPolicy":
        return cls(mode=PolicyMode.STRICT)

    @classmethod
    def from_name(cls, name: str, **kw) -> "IngestPolicy":
        """``"strict"`` / ``"salvage"`` -> policy (the CLI entry point)."""
        return cls(mode=PolicyMode(name), **kw)

    def __repr__(self) -> str:
        return f"IngestPolicy({self.mode.value})"


#: The two singleton policies almost every caller wants.
STRICT = IngestPolicy(mode=PolicyMode.STRICT)
SALVAGE = IngestPolicy(mode=PolicyMode.SALVAGE)


@dataclass(frozen=True)
class QuarantinedRecord:
    """One skipped record, with enough context to find it in the input.

    ``kind`` names the data plane that rejected it: ``fasta``,
    ``stockholm``, ``hmm`` (parsers), ``manifest`` (a whole job whose
    inputs could not be loaded) or ``divergence`` (a sequence the
    runtime oracle pulled because two engines disagreed on its score).
    """

    source: str          # file path or database/query name
    line: int            # 1-based line number; 0 when not line-addressable
    record: str          # record/sequence/model name ("" if unknown)
    reason: str
    kind: str = "fasta"

    def describe(self) -> str:
        where = f"{self.source}:{self.line}" if self.line else self.source
        name = f" [{self.record}]" if self.record else ""
        return f"{where}{name} ({self.kind}): {self.reason}"

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "line": int(self.line),
            "record": self.record,
            "reason": self.reason,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantinedRecord":
        return cls(
            source=data["source"],
            line=int(data["line"]),
            record=data.get("record", ""),
            reason=data["reason"],
            kind=data.get("kind", "fasta"),
        )


@dataclass
class RecordQuarantine:
    """Accumulating report of everything salvage mode skipped."""

    records: list[QuarantinedRecord] = field(default_factory=list)

    def add(
        self,
        source: str,
        line: int,
        record: str,
        reason: str,
        kind: str = "fasta",
    ) -> QuarantinedRecord:
        entry = QuarantinedRecord(
            source=source, line=line, record=record, reason=reason, kind=kind
        )
        self.records.append(entry)
        return entry

    def merge(self, other: "RecordQuarantine") -> "RecordQuarantine":
        self.records.extend(other.records)
        return self

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts

    def names(self) -> list[str]:
        """Record names in quarantine order (the acceptance-test handle)."""
        return [r.record for r in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __iter__(self):
        return iter(self.records)

    def to_dict(self) -> dict:
        return {
            "n_quarantined": len(self.records),
            "by_kind": self.by_kind(),
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecordQuarantine":
        return cls(
            records=[
                QuarantinedRecord.from_dict(r) for r in data.get("records", [])
            ]
        )

    def render_lines(self, limit: int = 10) -> list[str]:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind().items()))
        lines = [f"quarantined records: {len(self.records)}"
                 + (f" ({kinds})" if kinds else "")]
        for r in self.records[:limit]:
            lines.append(f"  {r.describe()}")
        if len(self.records) > limit:
            lines.append(f"  ... and {len(self.records) - limit} more")
        return lines

    def check_budget(
        self, policy: IngestPolicy, source: str, total: int, survivors: int
    ) -> None:
        """Enforce the salvage budget for one input file.

        ``total`` counts records seen (survivors + quarantined from this
        source); zero survivors, or a quarantined fraction above the
        policy's budget, raises :class:`~repro.errors.QuarantineError`.
        """
        if total == 0:
            return
        dropped = total - survivors
        if survivors == 0:
            raise QuarantineError(
                f"{source}: salvage quarantined all {total} record(s) - "
                "nothing usable survives"
            )
        if dropped / total > policy.max_quarantine_fraction:
            raise QuarantineError(
                f"{source}: salvage quarantined {dropped}/{total} records, "
                f"over the policy budget of "
                f"{policy.max_quarantine_fraction:.0%}"
            )
