"""Per-model statistical calibration of the three pipeline stages.

Like ``hmmbuild``'s calibration step, we score a sample of i.i.d.
background sequences with each stage's engine and fit the known-lambda
null distributions (:mod:`repro.pipeline.stats`).  The sample is scored
with the *same* quantized engines the search uses, so quantization biases
cancel out of the P-values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cpu.forward_batch import forward_score_batch
from ..cpu.generic import GenericProfile
from ..cpu.msv_reference import msv_score_batch
from ..cpu.viterbi_reference import viterbi_score_batch
from ..errors import CalibrationError
from ..hmm.profile import SearchProfile
from ..scoring.msv_profile import MSVByteProfile
from ..scoring.vit_profile import ViterbiWordProfile
from ..sequence.database import SequenceDatabase
from ..sequence.sequence import DigitalSequence
from ..sequence.synthetic import random_sequence_codes
from .stats import ScoreDistribution, bits_from_nats

__all__ = ["PipelineCalibration", "calibrate_profile"]


@dataclass(frozen=True)
class PipelineCalibration:
    """Fitted null distributions for the three stages, in bit-score space."""

    msv: ScoreDistribution
    vit: ScoreDistribution
    fwd: ScoreDistribution
    L: int              # length-model configuration the fits assume
    null_length_nats: float
    sample_size: int


def calibrate_profile(
    profile: SearchProfile,
    rng: np.random.Generator,
    n_filter: int = 400,
    n_forward: int = 120,
) -> PipelineCalibration:
    """Fit the stage null distributions for one configured profile.

    Parameters
    ----------
    n_filter:
        Background sample size for the MSV/Viterbi Gumbel fits.
    n_forward:
        Background sample size for the Forward exponential-tail fit
        (Forward is the expensive engine, so its sample is smaller).
    """
    if n_filter < 20 or n_forward < 20:
        raise CalibrationError("calibration samples must have at least 20 seqs")
    L = profile.L
    null_len = profile.null_length_correction(L)

    seqs = [
        DigitalSequence(f"calib/{i:05d}", random_sequence_codes(L, rng))
        for i in range(n_filter)
    ]
    db = SequenceDatabase(seqs, name="calibration")

    byte_prof = MSVByteProfile.from_profile(profile)
    word_prof = ViterbiWordProfile.from_profile(profile)
    msv_bits = bits_from_nats(msv_score_batch(byte_prof, db).scores, null_len)
    vit_bits = bits_from_nats(viterbi_score_batch(word_prof, db).scores, null_len)

    gp = GenericProfile.from_profile(profile)
    fwd_db = SequenceDatabase(seqs[:n_forward], name="calibration-fwd")
    fwd_nats = forward_score_batch(gp, fwd_db)
    fwd_bits = bits_from_nats(fwd_nats, null_len)

    return PipelineCalibration(
        msv=ScoreDistribution.fit("gumbel", np.asarray(msv_bits)),
        vit=ScoreDistribution.fit("gumbel", np.asarray(vit_bits)),
        fwd=ScoreDistribution.fit("exponential", np.asarray(fwd_bits)),
        L=L,
        null_length_nats=null_len,
        sample_size=n_filter,
    )
