"""Result containers for the hmmsearch pipeline.

Besides the in-memory dataclasses, every container serializes to
JSON-safe dictionaries (``to_dict``/``from_dict``): plain ints, floats,
strings and lists only, with NaN score slots encoded as ``None`` so the
output survives strict JSON encoders.  This is the wire format of the
batch search service's job responses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import PipelineError
from ..gpu.counters import KernelCounters
from ..scoring.guardrails import GuardrailCounters
from .oracle import OracleReport

__all__ = ["StageStats", "SearchHit", "SearchResults"]


def _float_or_none(value: float) -> float | str | None:
    """NaN (stage never reached) -> None; +/-inf (quantized overflow,
    which unconditionally passes a filter) -> "Infinity"/"-Infinity"."""
    v = float(value)
    if math.isnan(v):
        return None
    if math.isinf(v):
        return "Infinity" if v > 0 else "-Infinity"
    return v


def _float_back(value: float | str | None) -> float:
    if value is None:
        return float("nan")
    if isinstance(value, str):
        return float(value.replace("Infinity", "inf"))
    return float(value)


def _bits_to_list(bits: np.ndarray) -> list:
    return [_float_or_none(v) for v in np.asarray(bits, dtype=float)]


def _bits_from_list(values: list) -> np.ndarray:
    return np.array([_float_back(v) for v in values], dtype=np.float64)


@dataclass(frozen=True)
class StageStats:
    """Work and survivor accounting of one pipeline stage (paper Fig. 1)."""

    name: str
    n_in: int
    n_out: int
    rows: int    # DP rows processed = residues of the sequences scored
    cells: int   # rows * model size
    guard: GuardrailCounters | None = None  # numerical guardrail tallies

    @property
    def survivor_fraction(self) -> float:
        return self.n_out / self.n_in if self.n_in else 0.0

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "n_in": int(self.n_in),
            "n_out": int(self.n_out),
            "rows": int(self.rows),
            "cells": int(self.cells),
        }
        if self.guard is not None:
            data["guard"] = self.guard.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StageStats":
        guard = data.get("guard")
        return cls(
            name=data["name"],
            n_in=int(data["n_in"]),
            n_out=int(data["n_out"]),
            rows=int(data["rows"]),
            cells=int(data["cells"]),
            guard=GuardrailCounters.from_dict(guard) if guard else None,
        )


@dataclass(frozen=True)
class SearchHit:
    """One reported target sequence, with per-stage evidence.

    ``alignment`` is populated when the search was run with
    ``alignments=True``: the optimal Viterbi alignment with its per-domain
    coordinates and rendering.
    """

    name: str
    index: int
    length: int
    msv_bits: float
    msv_p: float
    vit_bits: float
    vit_p: float
    fwd_bits: float
    fwd_p: float
    evalue: float
    alignment: object | None = None

    def to_dict(self) -> dict:
        """JSON-safe representation (the alignment object, when present,
        is reduced to its rendered text)."""
        return {
            "name": self.name,
            "index": int(self.index),
            "length": int(self.length),
            "msv_bits": _float_or_none(self.msv_bits),
            "msv_p": _float_or_none(self.msv_p),
            "vit_bits": _float_or_none(self.vit_bits),
            "vit_p": _float_or_none(self.vit_p),
            "fwd_bits": _float_or_none(self.fwd_bits),
            "fwd_p": _float_or_none(self.fwd_p),
            "evalue": _float_or_none(self.evalue),
            "alignment": str(self.alignment) if self.alignment else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchHit":
        num = lambda key: _float_back(data[key])  # noqa: E731
        return cls(
            name=data["name"],
            index=int(data["index"]),
            length=int(data["length"]),
            msv_bits=num("msv_bits"),
            msv_p=num("msv_p"),
            vit_bits=num("vit_bits"),
            vit_p=num("vit_p"),
            fwd_bits=num("fwd_bits"),
            fwd_p=num("fwd_p"),
            evalue=num("evalue"),
            alignment=data.get("alignment"),
        )


@dataclass
class SearchResults:
    """Everything a search produced.

    ``msv_bits``/``vit_bits``/``fwd_bits`` are full-database arrays (NaN
    where a stage was never reached), so analyses can look at the filter
    behaviour beyond the reported hits.
    """

    query_name: str
    n_targets: int
    hits: list[SearchHit]
    stages: list[StageStats]
    msv_bits: np.ndarray
    vit_bits: np.ndarray
    fwd_bits: np.ndarray
    counters: dict[str, KernelCounters] = field(default_factory=dict)
    oracle: OracleReport | None = None  # differential selfcheck outcome

    def stage(self, name: str) -> StageStats:
        for st in self.stages:
            if st.name == name:
                return st
        raise PipelineError(f"no stage named {name!r}")

    def hit_names(self) -> list[str]:
        return [h.name for h in self.hits]

    def summary(self) -> str:
        lines = [
            f"query: {self.query_name}  targets: {self.n_targets}  "
            f"hits: {len(self.hits)}"
        ]
        for st in self.stages:
            lines.append(
                f"  {st.name:10s} in={st.n_in:7d} out={st.n_out:7d} "
                f"({100 * st.survivor_fraction:6.2f}%)  rows={st.rows}"
            )
        for h in self.hits[:10]:
            lines.append(
                f"  hit {h.name}  fwd={h.fwd_bits:7.2f} bits  E={h.evalue:.3g}"
            )
        if len(self.hits) > 10:
            lines.append(f"  ... and {len(self.hits) - 10} more hits")
        if self.oracle is not None and self.oracle:
            lines.extend("  " + ln for ln in self.oracle.render_lines())
        return "\n".join(lines)

    def to_dict(self, include_scores: bool = True) -> dict:
        """JSON-safe representation of the whole result set.

        ``include_scores=False`` drops the three full-database bit-score
        arrays, which dominate the payload for large databases and are
        rarely needed by service clients.
        """
        data = {
            "query_name": self.query_name,
            "n_targets": int(self.n_targets),
            "hits": [h.to_dict() for h in self.hits],
            "stages": [st.to_dict() for st in self.stages],
            "counters": {
                name: c.as_dict() for name, c in self.counters.items()
            },
        }
        if self.oracle is not None:
            data["oracle"] = self.oracle.to_dict()
        if include_scores:
            data["msv_bits"] = _bits_to_list(self.msv_bits)
            data["vit_bits"] = _bits_to_list(self.vit_bits)
            data["fwd_bits"] = _bits_to_list(self.fwd_bits)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SearchResults":
        n = int(data["n_targets"])
        empty = np.full(n, np.nan)

        def bits(key: str) -> np.ndarray:
            return _bits_from_list(data[key]) if key in data else empty.copy()

        counters = {}
        for name, values in data.get("counters", {}).items():
            c = KernelCounters()
            for k, v in values.items():
                setattr(c, k, int(v))
            counters[name] = c
        return cls(
            query_name=data["query_name"],
            n_targets=n,
            hits=[SearchHit.from_dict(h) for h in data["hits"]],
            stages=[StageStats.from_dict(st) for st in data["stages"]],
            msv_bits=bits("msv_bits"),
            vit_bits=bits("vit_bits"),
            fwd_bits=bits("fwd_bits"),
            counters=counters,
            oracle=(
                OracleReport.from_dict(data["oracle"])
                if "oracle" in data else None
            ),
        )
