"""Result containers for the hmmsearch pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PipelineError
from ..gpu.counters import KernelCounters

__all__ = ["StageStats", "SearchHit", "SearchResults"]


@dataclass(frozen=True)
class StageStats:
    """Work and survivor accounting of one pipeline stage (paper Fig. 1)."""

    name: str
    n_in: int
    n_out: int
    rows: int    # DP rows processed = residues of the sequences scored
    cells: int   # rows * model size

    @property
    def survivor_fraction(self) -> float:
        return self.n_out / self.n_in if self.n_in else 0.0


@dataclass(frozen=True)
class SearchHit:
    """One reported target sequence, with per-stage evidence.

    ``alignment`` is populated when the search was run with
    ``alignments=True``: the optimal Viterbi alignment with its per-domain
    coordinates and rendering.
    """

    name: str
    index: int
    length: int
    msv_bits: float
    msv_p: float
    vit_bits: float
    vit_p: float
    fwd_bits: float
    fwd_p: float
    evalue: float
    alignment: object | None = None


@dataclass
class SearchResults:
    """Everything a search produced.

    ``msv_bits``/``vit_bits``/``fwd_bits`` are full-database arrays (NaN
    where a stage was never reached), so analyses can look at the filter
    behaviour beyond the reported hits.
    """

    query_name: str
    n_targets: int
    hits: list[SearchHit]
    stages: list[StageStats]
    msv_bits: np.ndarray
    vit_bits: np.ndarray
    fwd_bits: np.ndarray
    counters: dict[str, KernelCounters] = field(default_factory=dict)

    def stage(self, name: str) -> StageStats:
        for st in self.stages:
            if st.name == name:
                return st
        raise PipelineError(f"no stage named {name!r}")

    def hit_names(self) -> list[str]:
        return [h.name for h in self.hits]

    def summary(self) -> str:
        lines = [
            f"query: {self.query_name}  targets: {self.n_targets}  "
            f"hits: {len(self.hits)}"
        ]
        for st in self.stages:
            lines.append(
                f"  {st.name:10s} in={st.n_in:7d} out={st.n_out:7d} "
                f"({100 * st.survivor_fraction:6.2f}%)  rows={st.rows}"
            )
        for h in self.hits[:10]:
            lines.append(
                f"  hit {h.name}  fwd={h.fwd_bits:7.2f} bits  E={h.evalue:.3g}"
            )
        if len(self.hits) > 10:
            lines.append(f"  ... and {len(self.hits) - 10} more hits")
        return "\n".join(lines)
