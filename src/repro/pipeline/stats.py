"""Score significance statistics (Eddy 2008; paper Section I).

High Viterbi/MSV scores of random sequences follow a Gumbel distribution
with slope ``lambda = log 2``; Forward scores have an exponential high
tail with the same slope.  Because lambda is known, only the location
parameter must be calibrated per model - done here, as in HMMER, by
scoring a sample of i.i.d. background sequences:

* Gumbel location ``mu`` by maximum likelihood with fixed lambda:
  ``mu = -(1/lambda) * log(mean(exp(-lambda * s)))``;
* exponential tail location ``tau`` from an upper quantile ``q_p``:
  ``tau = q_p + log(p) / lambda`` so that ``P(S > q_p) = p``.

P-values are computed on *bit* scores after the null-model length
correction, which makes them approximately length-independent (HMMER's
convention).  This calibration is what lets the pipeline thresholds
(P < 0.02 for MSV, P < 1e-3 for Viterbi) pass the paper's quoted 2.2%
and 0.1% of a mostly non-homologous database.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import EXP_LAMBDA, GUMBEL_LAMBDA, LOG2
from ..errors import CalibrationError

__all__ = [
    "gumbel_survival",
    "exponential_survival",
    "fit_gumbel_mu",
    "fit_exponential_tau",
    "ScoreDistribution",
]


def gumbel_survival(scores, mu: float, lam: float = GUMBEL_LAMBDA):
    """P-value ``P(S > s)`` under a Gumbel(mu, lambda) null."""
    s = np.asarray(scores, dtype=np.float64)
    out = -np.expm1(-np.exp(-lam * (s - mu)))
    return np.clip(out, 0.0, 1.0) if out.ndim else float(np.clip(out, 0.0, 1.0))


def exponential_survival(scores, tau: float, lam: float = EXP_LAMBDA):
    """P-value under an exponential high tail anchored at ``tau``."""
    s = np.asarray(scores, dtype=np.float64)
    out = np.minimum(1.0, np.exp(-lam * (s - tau)))
    return out if out.ndim else float(out)


def fit_gumbel_mu(sample: np.ndarray, lam: float = GUMBEL_LAMBDA) -> float:
    """Maximum-likelihood Gumbel location with known slope lambda."""
    s = np.asarray(sample, dtype=np.float64)
    s = s[np.isfinite(s)]
    if s.size < 2:
        raise CalibrationError("need at least 2 finite scores to fit mu")
    # mu = -(1/lam) log( (1/n) sum exp(-lam s) ), computed stably
    z = -lam * s
    zmax = z.max()
    return float(-(zmax + math.log(np.exp(z - zmax).mean())) / lam)


def fit_exponential_tau(
    sample: np.ndarray, lam: float = EXP_LAMBDA, tail_p: float = 0.05
) -> float:
    """Anchor of the exponential tail from the empirical ``1-tail_p``
    quantile."""
    if not 0.0 < tail_p < 0.5:
        raise CalibrationError("tail_p must be in (0, 0.5)")
    s = np.asarray(sample, dtype=np.float64)
    s = s[np.isfinite(s)]
    if s.size < 10:
        raise CalibrationError("need at least 10 finite scores to fit tau")
    q = float(np.quantile(s, 1.0 - tail_p))
    return q + math.log(tail_p) / lam


@dataclass(frozen=True)
class ScoreDistribution:
    """Null distribution of one stage's bit scores."""

    kind: str  # "gumbel" | "exponential"
    location: float
    lam: float = GUMBEL_LAMBDA

    def pvalue(self, bit_scores):
        """Survival probability of the null at the given bit scores."""
        if self.kind == "gumbel":
            return gumbel_survival(bit_scores, self.location, self.lam)
        if self.kind == "exponential":
            return exponential_survival(bit_scores, self.location, self.lam)
        raise CalibrationError(f"unknown distribution kind {self.kind!r}")

    def evalue(self, bit_scores, n_targets: int):
        """Expected false positives at this score over ``n_targets``."""
        if n_targets < 1:
            raise CalibrationError("n_targets must be positive")
        return np.asarray(self.pvalue(bit_scores)) * n_targets

    @classmethod
    def fit(cls, kind: str, sample: np.ndarray) -> "ScoreDistribution":
        if kind == "gumbel":
            return cls(kind="gumbel", location=fit_gumbel_mu(sample))
        if kind == "exponential":
            return cls(kind="exponential", location=fit_exponential_tau(sample))
        raise CalibrationError(f"unknown distribution kind {kind!r}")


def bits_from_nats(nats, null_length_nats: float):
    """HMMER bit-score convention: length-corrected log-odds over log 2."""
    return (np.asarray(nats, dtype=np.float64) - null_length_nats) / LOG2
