"""``hmmscan``-style search: one sequence against a library of models.

The paper's introduction lists "scanning an entire database of HMMs for
all motifs" among HMMER's core workloads; this module provides that
direction on top of the same engines and statistics as
:class:`~repro.pipeline.pipeline.HmmsearchPipeline`.  Each model runs
its own MSV -> P7Viterbi -> Forward cascade against the query sequence,
and models are ranked by E-value over the library size.

:class:`ModelLibrary` is the convenience front end: it wraps an
in-memory :class:`~repro.scan.catalog.LibraryCatalog` (so calibration
stays lazy and content-keyed) and scans through the
:class:`~repro.scan.service.ScanService`, which runs the real
production engines - striped SSE by default, the warp-synchronous GPU
kernels on request - instead of the scalar references.  Calibration
seeds derive from each model's *content* fingerprint, never its
position in the library, so scan results are invariant under
permutation of the model files.

For sequence-set scans, pressed on-disk libraries, and device-pool
scheduling, use :mod:`repro.scan` directly (or the ``press_library`` /
``scan`` facade entry points).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..errors import PipelineError
from ..hmm.plan7 import Plan7HMM
from ..options import Engine, SearchOptions
from ..sequence.database import SequenceDatabase
from ..sequence.sequence import DigitalSequence
from .pipeline import PipelineThresholds

__all__ = ["ModelLibrary", "ScanHit", "ScanResults"]


@dataclass(frozen=True)
class ScanHit:
    """One model matched by the query sequence."""

    model_name: str
    M: int
    msv_bits: float
    vit_bits: float
    fwd_bits: float
    fwd_p: float
    evalue: float


@dataclass
class ScanResults:
    """Outcome of scanning one sequence against a library."""

    sequence_name: str
    n_models: int
    hits: list[ScanHit]
    msv_survivors: int
    vit_survivors: int

    def hit_models(self) -> list[str]:
        return [h.model_name for h in self.hits]

    def summary(self) -> str:
        lines = [
            f"query: {self.sequence_name}  models: {self.n_models}  "
            f"hits: {len(self.hits)}  "
            f"(msv pass {self.msv_survivors}, vit pass {self.vit_survivors})"
        ]
        for h in self.hits[:10]:
            lines.append(
                f"  {h.model_name}  M={h.M}  fwd={h.fwd_bits:7.2f} bits  "
                f"E={h.evalue:.3g}"
            )
        return "\n".join(lines)


def _stage_passes(stages, name: str) -> int:
    for st in stages:
        if st.name == name:
            return st.n_out
    return 0


class ModelLibrary:
    """A pressed library of profile HMMs ready for scanning.

    Parameters
    ----------
    hmms:
        The models.  Names must be unique.
    L:
        Length-model configuration shared by all entries.
    """

    def __init__(
        self,
        hmms: Iterable[Plan7HMM],
        L: int = 350,
        thresholds: PipelineThresholds | None = None,
        seed: int = 42,
        calibration_filter_sample: int = 200,
        calibration_forward_sample: int = 50,
        options: SearchOptions | None = None,
    ) -> None:
        # deferred: repro.scan pulls in the service plane, which imports
        # repro.pipeline - importing it at module scope would cycle
        from ..scan import LibraryCatalog, PressSettings

        self.thresholds = thresholds or PipelineThresholds()
        self.options = options if options is not None else SearchOptions()
        self.catalog = LibraryCatalog.press(
            hmms,
            settings=PressSettings(
                L=L,
                seed=seed,
                calibration_filter_sample=calibration_filter_sample,
                calibration_forward_sample=calibration_forward_sample,
            ),
        )
        self._service = None

    @classmethod
    def from_catalog(cls, catalog) -> "ModelLibrary":
        """Wrap an already-pressed catalog (e.g. loaded from a store)."""
        lib = cls.__new__(cls)
        lib.thresholds = PipelineThresholds()
        lib.options = SearchOptions()
        lib.catalog = catalog
        lib._service = None
        return lib

    def __len__(self) -> int:
        return len(self.catalog)

    def model_names(self) -> list[str]:
        return self.catalog.names()

    def service(self):
        """The (lazily created) scan service backing this library."""
        if self._service is None:
            from ..scan import ScanService

            self._service = ScanService(self.catalog)
        return self._service

    def scan(self, sequence: DigitalSequence) -> ScanResults:
        """Run the three-stage cascade of every model on one sequence.

        The sequence is wrapped into a one-entry database and scanned
        through the service plane, so scoring uses the production
        engines (``options.engine``: striped SSE or the warp kernels)
        rather than the scalar references; scores are engine-invariant,
        so hits do not depend on the engine choice.
        """
        from ..scan import ScanOptions

        db = SequenceDatabase([sequence], name=sequence.name)
        sopts = replace(self.options, thresholds=self.thresholds)
        results = self.service().scan(db, ScanOptions(search=sopts))
        hits = [
            ScanHit(
                model_name=h.model_name,
                M=h.M,
                msv_bits=h.msv_bits,
                vit_bits=h.vit_bits,
                fwd_bits=h.fwd_bits,
                fwd_p=h.fwd_p,
                evalue=h.evalue,
            )
            for h in results.hits
        ]
        msv_pass = sum(
            1
            for stages in results.model_stages.values()
            if _stage_passes(stages, "msv") > 0
        )
        vit_pass = sum(
            1
            for stages in results.model_stages.values()
            if _stage_passes(stages, "p7viterbi") > 0
        )
        return ScanResults(
            sequence_name=sequence.name,
            n_models=len(self),
            hits=hits,
            msv_survivors=msv_pass,
            vit_survivors=vit_pass,
        )

    def gpu(self) -> "ModelLibrary":
        """A view of this library scanning on the simulated warp kernels."""
        view = ModelLibrary.__new__(ModelLibrary)
        view.thresholds = self.thresholds
        view.options = replace(self.options, engine=Engine.GPU_WARP)
        view.catalog = self.catalog
        view._service = self._service
        return view
