"""``hmmscan``-style search: one sequence against a library of models.

The paper's introduction lists "scanning an entire database of HMMs for
all motifs" among HMMER's core workloads; this module provides that
direction on top of the same engines and statistics as
:class:`~repro.pipeline.pipeline.HmmsearchPipeline`.  Each model runs its
own MSV -> P7Viterbi -> Forward cascade against the query sequence, and
models are ranked by E-value over the library size.

Calibration dominates library construction, so :class:`ModelLibrary`
calibrates lazily and caches: scanning many sequences against the same
library amortizes it, matching how HMMER ships pre-calibrated Pfam
pressings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..cpu.generic import GenericProfile, generic_forward_score
from ..cpu.msv_reference import msv_score_sequence
from ..cpu.viterbi_reference import viterbi_score_sequence
from ..errors import PipelineError
from ..hmm.plan7 import Plan7HMM
from ..hmm.profile import SearchProfile
from ..scoring.msv_profile import MSVByteProfile
from ..scoring.vit_profile import ViterbiWordProfile
from ..sequence.sequence import DigitalSequence
from .calibrate import PipelineCalibration, calibrate_profile
from .pipeline import PipelineThresholds
from .stats import bits_from_nats

__all__ = ["ModelLibrary", "ScanHit", "ScanResults"]


@dataclass(frozen=True)
class ScanHit:
    """One model matched by the query sequence."""

    model_name: str
    M: int
    msv_bits: float
    vit_bits: float
    fwd_bits: float
    fwd_p: float
    evalue: float


@dataclass
class ScanResults:
    """Outcome of scanning one sequence against a library."""

    sequence_name: str
    n_models: int
    hits: list[ScanHit]
    msv_survivors: int
    vit_survivors: int

    def hit_models(self) -> list[str]:
        return [h.model_name for h in self.hits]

    def summary(self) -> str:
        lines = [
            f"query: {self.sequence_name}  models: {self.n_models}  "
            f"hits: {len(self.hits)}  "
            f"(msv pass {self.msv_survivors}, vit pass {self.vit_survivors})"
        ]
        for h in self.hits[:10]:
            lines.append(
                f"  {h.model_name}  M={h.M}  fwd={h.fwd_bits:7.2f} bits  "
                f"E={h.evalue:.3g}"
            )
        return "\n".join(lines)


class _Entry:
    """One model with lazily-built profiles and calibration."""

    def __init__(self, hmm: Plan7HMM, L: int, seed: int,
                 n_filter: int, n_forward: int) -> None:
        self.hmm = hmm
        self._L = L
        self._seed = seed
        self._n_filter = n_filter
        self._n_forward = n_forward
        self._built: tuple | None = None

    def built(self):
        if self._built is None:
            profile = SearchProfile(self.hmm, L=self._L)
            calibration = calibrate_profile(
                profile,
                np.random.default_rng(self._seed),
                n_filter=self._n_filter,
                n_forward=self._n_forward,
            )
            self._built = (
                profile,
                MSVByteProfile.from_profile(profile),
                ViterbiWordProfile.from_profile(profile),
                GenericProfile.from_profile(profile),
                calibration,
            )
        return self._built


class ModelLibrary:
    """A pressed library of profile HMMs ready for scanning.

    Parameters
    ----------
    hmms:
        The models.  Names must be unique.
    L:
        Length-model configuration shared by all entries.
    """

    def __init__(
        self,
        hmms: Iterable[Plan7HMM],
        L: int = 350,
        thresholds: PipelineThresholds | None = None,
        seed: int = 42,
        calibration_filter_sample: int = 200,
        calibration_forward_sample: int = 50,
    ) -> None:
        hmms = list(hmms)
        if not hmms:
            raise PipelineError("a model library cannot be empty")
        names = [h.name for h in hmms]
        if len(set(names)) != len(names):
            raise PipelineError("model names in a library must be unique")
        self.thresholds = thresholds or PipelineThresholds()
        self._entries = [
            _Entry(h, L, seed + i, calibration_filter_sample,
                   calibration_forward_sample)
            for i, h in enumerate(hmms)
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def model_names(self) -> list[str]:
        return [e.hmm.name for e in self._entries]

    def scan(self, sequence: DigitalSequence) -> ScanResults:
        """Run the three-stage cascade of every model on one sequence."""
        th = self.thresholds
        hits: list[ScanHit] = []
        msv_pass = 0
        vit_pass = 0
        for entry in self._entries:
            profile, byte_prof, word_prof, gp, cal = entry.built()
            null_len = cal.null_length_nats
            msv_bits = float(
                bits_from_nats(
                    msv_score_sequence(byte_prof, sequence.codes), null_len
                )
            )
            if cal.msv.pvalue(msv_bits) >= th.f1:
                continue
            msv_pass += 1
            vit_bits = float(
                bits_from_nats(
                    viterbi_score_sequence(word_prof, sequence.codes), null_len
                )
            )
            if cal.vit.pvalue(vit_bits) >= th.f2:
                continue
            vit_pass += 1
            fwd_bits = float(
                bits_from_nats(
                    generic_forward_score(gp, sequence.codes), null_len
                )
            )
            fwd_p = float(cal.fwd.pvalue(fwd_bits))
            if fwd_p >= th.f3:
                continue
            evalue = fwd_p * len(self)
            if evalue <= th.report_evalue:
                hits.append(
                    ScanHit(
                        model_name=entry.hmm.name,
                        M=entry.hmm.M,
                        msv_bits=msv_bits,
                        vit_bits=vit_bits,
                        fwd_bits=fwd_bits,
                        fwd_p=fwd_p,
                        evalue=evalue,
                    )
                )
        hits.sort(key=lambda h: (h.evalue, h.model_name))
        return ScanResults(
            sequence_name=sequence.name,
            n_models=len(self),
            hits=hits,
            msv_survivors=msv_pass,
            vit_survivors=vit_pass,
        )
