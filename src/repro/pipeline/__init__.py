"""The hmmsearch task pipeline: statistics, calibration, stages, results."""

from .calibrate import PipelineCalibration, calibrate_profile
from .hmmscan import ModelLibrary, ScanHit, ScanResults
from .oracle import Divergence, OracleReport, sample_indices
from .pipeline import Engine, HmmsearchPipeline, PipelineThresholds
from .results import SearchHit, SearchResults, StageStats
from .stats import (
    ScoreDistribution,
    bits_from_nats,
    exponential_survival,
    fit_exponential_tau,
    fit_gumbel_mu,
    gumbel_survival,
)

__all__ = [
    "HmmsearchPipeline",
    "Engine",
    "PipelineThresholds",
    "PipelineCalibration",
    "calibrate_profile",
    "ModelLibrary",
    "ScanHit",
    "ScanResults",
    "SearchResults",
    "SearchHit",
    "StageStats",
    "Divergence",
    "OracleReport",
    "sample_indices",
    "ScoreDistribution",
    "gumbel_survival",
    "exponential_survival",
    "fit_gumbel_mu",
    "fit_exponential_tau",
    "bits_from_nats",
]
