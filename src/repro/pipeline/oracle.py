"""Runtime differential oracle: shadow-score a sample, catch divergence.

The paper's accuracy claim - every engine computes *exactly* the same
quantized filter scores - is asserted by the test suite, but a production
run can still diverge at runtime: a corrupted device, a bad shard merge,
a miscompiled kernel.  The oracle turns the claim into a continuous
runtime check.  For each searched chunk a small deterministic sample of
sequences is re-scored through the scalar reference engines
(:func:`~repro.cpu.msv_reference.msv_score_sequence`,
:func:`~repro.cpu.viterbi_reference.viterbi_score_sequence`) and the
batched Forward value is re-derived per sequence; any mismatch is a
:class:`Divergence`.

Comparison rules mirror the engines' numerical contracts:

* MSV and P7Viterbi are **quantized** - the reference must match the
  pipeline score *bit for bit* (infinities included: an overflowed
  sequence must overflow in both engines).
* Forward is floating point and the batched engine is only guaranteed to
  match the per-sequence recurrence to tiny rounding slack, so it is
  compared with an absolute tolerance (:data:`FORWARD_ABS_TOL`).

Sampling is deterministic: the indices depend only on the query name,
the database name and size, and the sample budget - never on wall-clock
or global RNG state - so a failing run can be replayed exactly.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FORWARD_ABS_TOL",
    "Divergence",
    "OracleReport",
    "sample_indices",
    "scores_match",
]

#: Absolute tolerance for Forward scores (nats).  The batched engine is
#: validated against the per-sequence recurrence to ~1e-9; 1e-6 leaves
#: three orders of magnitude of slack while still catching any real
#: corruption (the smallest injected bias anywhere in the codebase is
#: ~3 nats).
FORWARD_ABS_TOL = 1e-6


def sample_indices(query: str, database: str, n: int, k: int) -> list[int]:
    """``k`` deterministic sample indices out of ``n`` (without
    replacement), sorted, seeded from the query/database identity only."""
    if n <= 0 or k <= 0:
        return []
    k = min(k, n)
    digest = hashlib.sha256(
        f"{query}|{database}|{n}|{k}".encode()
    ).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.Generator(np.random.PCG64(seed))
    return sorted(int(i) for i in rng.choice(n, size=k, replace=False))


def scores_match(expected: float, observed: float, abs_tol: float = 0.0) -> bool:
    """Compare two scores under the oracle's rules.

    Exact (``abs_tol=0``) comparison treats equal infinities as a match
    - quantized overflow (+inf) and the ViterbiFilter's -inf floor are
    legitimate score values, not errors.
    """
    if math.isnan(expected) or math.isnan(observed):
        return False
    if math.isinf(expected) or math.isinf(observed):
        return expected == observed
    return abs(expected - observed) <= abs_tol


@dataclass(frozen=True)
class Divergence:
    """One sequence where the pipeline engine and the scalar reference
    disagreed, with everything needed to replay the comparison."""

    sequence: str     # target sequence name
    index: int        # its index in the searched database
    stage: str        # "msv" | "p7viterbi" | "forward"
    expected: float   # scalar reference score (nats)
    observed: float   # pipeline engine score (nats)

    def describe(self) -> str:
        return (
            f"{self.stage}: sequence {self.sequence!r} (index "
            f"{self.index}): reference {self.expected!r} != engine "
            f"{self.observed!r}"
        )

    def to_dict(self) -> dict:
        enc = lambda v: None if math.isnan(v) else (  # noqa: E731
            str(v) if math.isinf(v) else float(v)
        )
        return {
            "sequence": self.sequence,
            "index": int(self.index),
            "stage": self.stage,
            "expected": enc(self.expected),
            "observed": enc(self.observed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Divergence":
        dec = lambda v: float("nan") if v is None else float(v)  # noqa: E731
        return cls(
            sequence=data["sequence"],
            index=int(data["index"]),
            stage=data["stage"],
            expected=dec(data["expected"]),
            observed=dec(data["observed"]),
        )


@dataclass
class OracleReport:
    """Outcome of the differential oracle over one search."""

    checked: int = 0                      # sequences shadow-scored
    comparisons: int = 0                  # stage-level score comparisons
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def merge(self, other: "OracleReport") -> "OracleReport":
        self.checked += other.checked
        self.comparisons += other.comparisons
        self.divergences.extend(other.divergences)
        return self

    def __bool__(self) -> bool:
        return self.checked > 0

    def render_lines(self, limit: int = 10) -> list[str]:
        lines = [
            f"selfcheck: {self.checked} sequence(s) shadow-scored, "
            f"{self.comparisons} comparison(s), "
            f"{len(self.divergences)} divergence(s)"
        ]
        for d in self.divergences[:limit]:
            lines.append(f"  DIVERGED {d.describe()}")
        if len(self.divergences) > limit:
            lines.append(
                f"  ... and {len(self.divergences) - limit} more"
            )
        return lines

    def to_dict(self) -> dict:
        return {
            "checked": int(self.checked),
            "comparisons": int(self.comparisons),
            "divergences": [d.to_dict() for d in self.divergences],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OracleReport":
        return cls(
            checked=int(data.get("checked", 0)),
            comparisons=int(data.get("comparisons", 0)),
            divergences=[
                Divergence.from_dict(d)
                for d in data.get("divergences", [])
            ],
        )
