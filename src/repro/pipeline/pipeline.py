"""The hmmsearch task pipeline (paper Figure 1).

``MSV filter -> P7Viterbi filter -> Forward``, with P-value thresholds
between stages (HMMER 3.0 defaults: 0.02, 1e-3, 1e-5).  The two
accelerated stages dispatch through the engine registry
(:mod:`repro.engines`): ``cpu_sse`` (the vectorized golden reference,
bit-identical to the striped SSE simulation), ``gpu_warp`` (the paper's
warp-synchronous kernels), ``gpu_warp_batched`` (cross-sequence batched
kernels) and ``mp`` (process pool), selectable per stage via
``SearchOptions.engine``.

All produce *identical* results - the paper's accuracy-preservation
claim - which the test suite asserts; they differ in the hardware event
counters and in the stage times the performance model assigns.

:meth:`HmmsearchPipeline.search` takes a
:class:`~repro.options.SearchOptions`; the historical per-kwarg calling
convention (``engine=``, ``selfcheck=``, ``policy=``, ...) still works
through the deprecation shim.  When ``options.tracer`` is armed, the
search records a span tree (search -> stage -> kernel, with schedule
and shard levels added by the service executors) carrying stage
funnels, kernel counters, occupancy and memory-config choices; with the
tracer off, results are bit-identical and the instrumentation reduces
to one ``is None`` check per block.
"""

from __future__ import annotations

import numpy as np

from ..cpu.forward_batch import forward_score_batch
from ..cpu.generic import GenericProfile, generic_forward_score
from ..cpu.msv_reference import msv_score_sequence
from ..cpu.viterbi_reference import viterbi_score_sequence
from ..errors import DivergenceError, PipelineError
from ..gpu.counters import KernelCounters
from ..hardening import RecordQuarantine
from ..hmm.background import NullModel
from ..hmm.plan7 import Plan7HMM
from ..hmm.profile import SearchProfile
from ..obs.span import span
from ..options import (
    UNSET,
    Engine,
    PipelineThresholds,
    SearchOptions,
    resolve_search_options,
)
from ..scoring.guardrails import GuardrailCounters
from ..scoring.msv_profile import MSVByteProfile
from ..scoring.vit_profile import ViterbiWordProfile
from ..sequence.database import SequenceDatabase
from .calibrate import PipelineCalibration, calibrate_profile
from .oracle import FORWARD_ABS_TOL, Divergence, OracleReport, sample_indices, scores_match
from .results import SearchHit, SearchResults, StageStats
from .stats import bits_from_nats

__all__ = ["Engine", "PipelineThresholds", "HmmsearchPipeline"]


class HmmsearchPipeline:
    """A query model prepared for searching sequence databases.

    Construction configures the search profile, quantizes the filter
    profiles and calibrates the stage statistics; :meth:`search` can then
    be run against any number of databases.

    Parameters
    ----------
    hmm:
        The query Plan-7 model.
    L:
        Length-model configuration used for scoring and calibration
        (HMMER reconfigures per target; we use a fixed representative
        length, which shifts all scores coherently and cancels in the
        calibrated P-values).
    seed:
        Seed of the calibration sample; fixed by default so results are
        reproducible.
    """

    def __init__(
        self,
        hmm: Plan7HMM,
        L: int = 400,
        multihit: bool = True,
        thresholds: PipelineThresholds | None = None,
        null: NullModel | None = None,
        seed: int = 42,
        calibration_filter_sample: int = 400,
        calibration_forward_sample: int = 120,
        calibration: PipelineCalibration | None = None,
    ) -> None:
        self.hmm = hmm
        self.thresholds = thresholds or PipelineThresholds()
        self.profile = SearchProfile(hmm, null=null, multihit=multihit, L=L)
        self.byte_profile = MSVByteProfile.from_profile(self.profile)
        self.word_profile = ViterbiWordProfile.from_profile(self.profile)
        self.generic_profile = GenericProfile.from_profile(self.profile)
        if calibration is not None and calibration.L != self.profile.L:
            raise PipelineError(
                f"supplied calibration was fitted at L={calibration.L}, "
                f"pipeline is configured with L={self.profile.L}"
            )
        # a pre-fitted calibration (e.g. from a pressed library catalog)
        # skips the expensive background-sample scoring entirely
        self.calibration: PipelineCalibration = (
            calibration
            if calibration is not None
            else calibrate_profile(
                self.profile,
                np.random.default_rng(seed),
                n_filter=calibration_filter_sample,
                n_forward=calibration_forward_sample,
            )
        )

    # -- stage engines ------------------------------------------------------

    def _score_filter(
        self, stage_name, profile, db, opts, counters,
        executor=None, guard=None,
    ):
        """Score one accelerated filter stage (MSV or P7Viterbi).

        Dispatch goes through the engine registry: the stage's resolved
        :class:`~repro.engines.EngineSpec` owns the scoring strategy
        (reference batch, warp kernel, cross-sequence batched kernel,
        process pool).  The device-pool ``executor`` is handed only to
        ``pooled`` engines - the others score in-process and the
        sharded-retry machinery never sees them.
        """
        spec = opts.engine.spec_for(stage_name)
        return spec.scorer(
            stage_name, profile, db,
            opts=opts, counters=counters, guard=guard,
            executor=executor if spec.pooled else None,
            M=self.profile.M,
        )

    # -- search ---------------------------------------------------------------

    def search(
        self,
        database: SequenceDatabase,
        options: SearchOptions | None = None,
        *,
        executor: object | None = None,
        engine=UNSET,
        device=UNSET,
        config=UNSET,
        alignments=UNSET,
        selfcheck=UNSET,
        policy=UNSET,
        quarantine=UNSET,
    ) -> SearchResults:
        """Run the three-stage pipeline over a database.

        All behaviour is configured by ``options``
        (:class:`~repro.options.SearchOptions`); the trailing keyword
        arguments are the deprecated pre-options calling convention and
        fold into ``options`` via the shim, emitting a
        ``DeprecationWarning``.

        With ``options.alignments`` every reported hit additionally
        carries its optimal Viterbi alignment (domains, coordinates,
        rendering) - the post-pipeline step real hmmsearch output
        includes.

        ``executor`` replaces the single-device GPU dispatch: any object
        with ``score_stage(name, kernel, profile, database, *, config,
        counters) -> FilterScores`` (the batch search service passes a
        device-pool executor here to spread each stage across several
        simulated devices).  Scores - and therefore hits - are identical
        either way; only the per-device accounting differs.

        ``options.selfcheck = N`` arms the runtime differential oracle:
        a deterministic sample of up to ``N`` sequences is shadow-scored
        through the scalar reference engines and compared against the
        pipeline's scores (bit-exact for the quantized filters, tiny
        absolute tolerance for Forward).  On divergence a strict
        ``options.policy`` raises
        :class:`~repro.errors.DivergenceError` naming the sequence and
        stage; a salvage policy drops the diverged sequences from the
        hit list and records them into ``options.quarantine`` (kind
        ``divergence``).  The full outcome is returned as
        ``SearchResults.oracle`` either way.

        ``options.tracer`` records a ``search`` span wrapping one
        ``stage`` span per pipeline stage (funnel counters attached) and
        a ``kernel`` span per kernel launch; tracing never changes
        scores, hits or stats - the invariant the test suite pins.
        """
        opts = resolve_search_options(
            options, "HmmsearchPipeline.search",
            engine=engine, device=device, config=config,
            alignments=alignments, selfcheck=selfcheck, policy=policy,
            quarantine=quarantine,
        )
        tracer = opts.tracer
        n = len(database)
        M = self.profile.M
        null_len = self.calibration.null_length_nats
        th = opts.thresholds or self.thresholds
        counters: dict[str, KernelCounters] = {}

        with span(
            tracer, f"search:{self.hmm.name}", "search",
            query=self.hmm.name, database=database.name,
            engine=opts.engine.value, M=M,
        ) as search_span:
            if search_span is not None:
                search_span.count(targets=n, residues=database.total_residues)

            # ---- stage 1: MSV filter over everything ----
            guard1 = GuardrailCounters() if opts.guard else None
            with span(tracer, "msv", "stage", stage="msv") as st_span:
                msv_scores = self._score_filter(
                    "msv", self.byte_profile,
                    database, opts, counters, executor, guard1,
                )
                if guard1 is not None:
                    guard1.overflows += int(
                        np.count_nonzero(msv_scores.overflowed)
                    )
                msv_bits = np.asarray(
                    bits_from_nats(msv_scores.scores, null_len)
                )
                msv_p = self.calibration.msv.pvalue(msv_bits)
                pass1 = np.flatnonzero(msv_p < th.f1)
                stage1 = StageStats(
                    name="msv",
                    n_in=n,
                    n_out=int(pass1.size),
                    rows=database.total_residues,
                    cells=database.total_residues * M,
                    guard=guard1,
                )
                if st_span is not None:
                    st_span.count(
                        n_in=stage1.n_in, n_out=stage1.n_out,
                        rows=stage1.rows, cells=stage1.cells,
                    )

            # ---- stage 2: P7Viterbi over MSV survivors ----
            vit_bits = np.full(n, np.nan)
            vit_p = np.full(n, np.nan)
            pass2 = np.array([], dtype=np.int64)
            rows2 = 0
            guard2 = GuardrailCounters() if opts.guard else None
            vit_nats: dict[int, float] = {}
            with span(tracer, "p7viterbi", "stage", stage="p7viterbi") as st_span:
                if pass1.size:
                    sub = database.subset(pass1.tolist())
                    rows2 = sub.total_residues
                    vit_scores = self._score_filter(
                        "p7viterbi", self.word_profile,
                        sub, opts, counters, executor, guard2,
                    )
                    if guard2 is not None:
                        guard2.overflows += int(
                            np.count_nonzero(vit_scores.overflowed)
                        )
                        guard2.underflows += int(
                            np.count_nonzero(np.isneginf(vit_scores.scores))
                        )
                    vit_nats = {
                        int(i): float(s)
                        for i, s in zip(pass1, vit_scores.scores)
                    }
                    vb = np.asarray(bits_from_nats(vit_scores.scores, null_len))
                    vit_bits[pass1] = vb
                    vp = self.calibration.vit.pvalue(vb)
                    vit_p[pass1] = vp
                    pass2 = pass1[vp < th.f2]
                stage2 = StageStats(
                    name="p7viterbi",
                    n_in=int(pass1.size),
                    n_out=int(pass2.size),
                    rows=rows2,
                    cells=rows2 * M,
                    guard=guard2,
                )
                if st_span is not None:
                    st_span.count(
                        n_in=stage2.n_in, n_out=stage2.n_out,
                        rows=stage2.rows, cells=stage2.cells,
                    )

            # ---- stage 3: Forward over Viterbi survivors (always CPU) ----
            fwd_bits = np.full(n, np.nan)
            fwd_p = np.full(n, np.nan)
            hits: list[SearchHit] = []
            rows3 = 0
            guard3 = GuardrailCounters() if opts.guard else None
            fwd_nats: dict[int, float] = {}
            with span(tracer, "forward", "stage", stage="forward") as st_span:
                if pass2.size:
                    sub3 = database.subset(pass2.tolist())
                    with span(
                        tracer, "forward_batch", "kernel",
                        stage="forward", engine="cpu_generic",
                    ) as ks:
                        batch_nats = forward_score_batch(
                            self.generic_profile, sub3, guard=guard3
                        )
                        if ks is not None:
                            ks.count(
                                rows=sub3.total_residues, sequences=len(sub3)
                            )
                    fwd_nats = {
                        int(idx): float(v)
                        for idx, v in zip(pass2, batch_nats)
                    }
                for idx in pass2:
                    seq = database[int(idx)]
                    rows3 += len(seq)
                    nats = fwd_nats[int(idx)]
                    fb = float(bits_from_nats(nats, null_len))
                    fwd_bits[idx] = fb
                    fp = float(self.calibration.fwd.pvalue(fb))
                    fwd_p[idx] = fp
                    if fp < th.f3:
                        evalue = fp * n
                        if evalue <= th.report_evalue:
                            aln = None
                            if opts.alignments:
                                from ..cpu.traceback import viterbi_traceback

                                aln = viterbi_traceback(
                                    self.generic_profile, seq.codes
                                )
                            hits.append(
                                SearchHit(
                                    name=seq.name,
                                    index=int(idx),
                                    length=len(seq),
                                    msv_bits=float(msv_bits[idx]),
                                    msv_p=float(msv_p[idx]),
                                    vit_bits=float(vit_bits[idx]),
                                    vit_p=float(vit_p[idx]),
                                    fwd_bits=fb,
                                    fwd_p=fp,
                                    evalue=evalue,
                                    alignment=aln,
                                )
                            )
                n_pass3 = sum(1 for idx in pass2 if fwd_p[idx] < th.f3)
                stage3 = StageStats(
                    name="forward",
                    n_in=int(pass2.size),
                    n_out=int(n_pass3),
                    rows=rows3,
                    cells=rows3 * M,
                    guard=guard3,
                )
                if st_span is not None:
                    st_span.count(
                        n_in=stage3.n_in, n_out=stage3.n_out,
                        rows=stage3.rows, cells=stage3.cells,
                    )

            # ---- differential oracle over a deterministic sample ----
            oracle = None
            if opts.selfcheck > 0:
                oracle = self._run_oracle(
                    database, opts.selfcheck, msv_scores.scores,
                    vit_nats, fwd_nats,
                )
                if not oracle.ok:
                    if not opts.policy.salvage:
                        raise DivergenceError(
                            f"query {self.hmm.name!r} vs database "
                            f"{database.name!r}: engine scores diverged from "
                            "the scalar reference - "
                            + "; ".join(
                                d.describe() for d in oracle.divergences[:3]
                            )
                        )
                    q = (
                        opts.quarantine
                        if opts.quarantine is not None
                        else RecordQuarantine()
                    )
                    diverged = {d.index for d in oracle.divergences}
                    for d in oracle.divergences:
                        q.add(
                            database.name, 0, d.sequence, d.describe(),
                            kind="divergence",
                        )
                    hits = [h for h in hits if h.index not in diverged]

            hits.sort(key=lambda h: (h.evalue, h.name))
            if search_span is not None:
                search_span.count(hits=len(hits))
        return SearchResults(
            query_name=self.hmm.name,
            n_targets=n,
            hits=hits,
            stages=[stage1, stage2, stage3],
            msv_bits=msv_bits,
            vit_bits=vit_bits,
            fwd_bits=fwd_bits,
            counters=counters,
            oracle=oracle,
        )

    def _run_oracle(
        self,
        database: SequenceDatabase,
        selfcheck: int,
        msv_nats: np.ndarray,
        vit_nats: dict[int, float],
        fwd_nats: dict[int, float],
    ) -> OracleReport:
        """Shadow-score a deterministic sample through the scalar
        reference engines and compare against the pipeline's scores."""
        report = OracleReport()
        for idx in sample_indices(
            self.hmm.name, database.name, len(database), selfcheck
        ):
            idx = int(idx)
            seq = database[idx]
            report.checked += 1
            checks = [
                ("msv",
                 msv_score_sequence(self.byte_profile, seq.codes),
                 float(msv_nats[idx]), 0.0),
            ]
            if idx in vit_nats:
                checks.append(
                    ("p7viterbi",
                     viterbi_score_sequence(self.word_profile, seq.codes),
                     vit_nats[idx], 0.0)
                )
            if idx in fwd_nats:
                checks.append(
                    ("forward",
                     generic_forward_score(self.generic_profile, seq.codes),
                     fwd_nats[idx], FORWARD_ABS_TOL)
                )
            for stage, expected, observed, tol in checks:
                report.comparisons += 1
                if not scores_match(expected, observed, tol):
                    report.divergences.append(
                        Divergence(
                            sequence=seq.name,
                            index=idx,
                            stage=stage,
                            expected=expected,
                            observed=observed,
                        )
                    )
        return report

    def forward_all(self, database: SequenceDatabase) -> np.ndarray:
        """Forward bit scores of *every* sequence, bypassing the filters.

        The ground truth for filter-sensitivity studies: anything
        significant here but absent from :meth:`search`'s hits was lost
        to a filter.  Expensive by design - this is exactly the cost the
        MSV/Viterbi cascade exists to avoid.
        """
        nats = forward_score_batch(self.generic_profile, database)
        return np.asarray(
            bits_from_nats(nats, self.calibration.null_length_nats)
        )

    def filter_loss(
        self, database: SequenceDatabase, results: SearchResults | None = None
    ) -> tuple[int, int]:
        """(lost, total) significant sequences missed by the filter
        cascade, judged against the unfiltered Forward ground truth."""
        if results is None:
            results = self.search(database)
        fwd_bits = self.forward_all(database)
        fwd_p = np.asarray(self.calibration.fwd.pvalue(fwd_bits))
        significant = set(np.flatnonzero(fwd_p < self.thresholds.f3).tolist())
        found = {h.index for h in results.hits}
        return len(significant - found), len(significant)

    def __repr__(self) -> str:
        return (
            f"HmmsearchPipeline({self.hmm.name!r}, M={self.profile.M}, "
            f"L={self.profile.L})"
        )
