"""GPU acceleration study: the paper's headline experiment in miniature.

Run with::

    python examples/gpu_acceleration_study.py

Searches the same database with the CPU (SSE reference) engine and the
simulated warp-synchronous GPU engine, verifies the results are
*identical* (the paper's accuracy-preservation claim), inspects the
hardware event counters that make the GPU kernels architecture-aware,
and prints the modelled per-stage speedups for a Tesla K40.
"""

import numpy as np

from repro import (
    Engine,
    HmmsearchPipeline,
    KEPLER_K40,
    MemoryConfig,
    Stage,
    StageWork,
    best_gpu_stage_time,
    cpu_stage_time,
    envnr_like,
    sample_hmm,
    stage_occupancy,
)


def main() -> None:
    rng = np.random.default_rng(7)
    hmm = sample_hmm(200, rng, name="demo-200")
    database = envnr_like(500, rng, hmm=hmm, homolog_fraction=0.01)
    print(f"query: {hmm}   targets: {database}")

    pipeline = HmmsearchPipeline(hmm, L=int(database.mean_length))

    cpu = pipeline.search(database, engine=Engine.CPU_SSE)
    gpu = pipeline.search(
        database,
        engine=Engine.GPU_WARP,
        device=KEPLER_K40,
        config=MemoryConfig.SHARED,
    )

    # --- accuracy: bit-identical scores, identical hit lists ---
    assert cpu.hit_names() == gpu.hit_names()
    assert np.allclose(cpu.msv_bits, gpu.msv_bits, equal_nan=True)
    print(f"\nCPU and GPU pipelines agree exactly: {len(cpu.hits)} hits")

    # --- what the architecture-aware kernels did ---
    print("\nGPU kernel event counters:")
    for stage_name, c in gpu.counters.items():
        print(
            f"  {stage_name:10s} rows={c.rows:7d} strips={c.strips:8d} "
            f"shuffles={c.shuffles:8d} syncthreads={c.syncthreads} "
            f"lazyf_rows={c.lazyf_rows_checked}"
        )
    print("  (note syncthreads == 0: warp-synchronous execution)")

    # --- modelled performance at the paper's database scale ---
    print("\nModelled stage speedups on the K40 (Env-nr scale):")
    scale = 1_290_247_663 / database.total_residues
    for stage, stats in (
        (Stage.MSV, cpu.stage("msv")),
        (Stage.P7VITERBI, cpu.stage("p7viterbi")),
    ):
        work = StageWork(
            rows=int(stats.rows * scale),
            seqs=max(1, int(stats.n_in * scale)),
            M=hmm.M,
        )
        t_cpu = cpu_stage_time(stage, work)
        t_gpu = best_gpu_stage_time(stage, work, KEPLER_K40)
        occ = stage_occupancy(stage, hmm.M, t_gpu.config, KEPLER_K40)
        print(
            f"  {stage.value:10s} cpu={t_cpu:7.2f}s  gpu={t_gpu.seconds:6.2f}s "
            f"({t_gpu.config.value} config, occupancy {occ.occupancy:.0%}) "
            f"-> {t_cpu / t_gpu.seconds:.1f}x"
        )


if __name__ == "__main__":
    main()
