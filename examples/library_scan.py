"""Model-library scan: press once, scan forever.

Run with::

    python examples/library_scan.py

The hmmscan direction inverts hmmsearch: one sequence set is scored
against a *library* of profile HMMs.  The expensive part of preparing a
library is calibrating each model's score distributions, so - like
HMMER's ``hmmpress`` - the catalog persists calibrations (and the
quantized scoring tables) to an on-disk store keyed by model content.
A library pays calibration once, ever: reloading the pressed store and
scanning performs zero recalibrations, and the hits are bit-identical
to a fresh in-memory pressing.

The scan itself is model-batched: models are bucketed around the
memory-configuration crossover (shared-memory kernels stop paying off
near M~1000 on the paper's K40), and several small models are
co-scheduled into one kernel launch when their combined scoring tables
still fit shared memory at full occupancy - the CUDAMPF++ packing
strategy.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    PressSettings,
    ScanOptions,
    SearchOptions,
    homolog_database,
    load_library,
    press_library,
    sample_hmm,
    scan,
)

FAMILY_SIZES = (25, 40, 60)
SETTINGS = PressSettings(
    L=100, calibration_filter_sample=80, calibration_forward_sample=25
)


def build_library(rng):
    return [
        sample_hmm(M, rng, name=f"fam{M}", conservation=30.0)
        for M in FAMILY_SIZES
    ]


def hit_keys(results):
    return [
        (h.model_name, h.sequence_name, h.fwd_bits, h.evalue)
        for h in results.hits
    ]


def main() -> None:
    rng = np.random.default_rng(2015)
    models = build_library(rng)
    database = homolog_database(
        10, 90.0, rng, hmm=models[1], homolog_fraction=0.5, name="targets"
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "library.pressed"

        # -- press: calibrate each model once, persist to the store ---------
        fresh = press_library(models, store=store, settings=SETTINGS,
                              name="demo")
        fresh_results = scan(fresh, database)
        print(f"pressed {len(fresh)} models -> {store.name}")
        print(f"  calibrations paid at press time: "
              f"{fresh.stats()['calibrations']}")

        # -- reload: the store already holds every calibration ---------------
        reloaded = load_library(store)
        results = scan(
            reloaded, database,
            ScanOptions(search=SearchOptions(engine="gpu_warp")),
        )
        print(f"reloaded store, scanned {results.n_sequences} sequences "
              f"x {results.n_models} models")
        print(f"  recalibrations after reload: "
              f"{reloaded.stats()['calibrations']}")
        same = hit_keys(results) == hit_keys(fresh_results)
        print("  hits identical to the fresh pressing: "
              f"{'yes' if same else 'NO'}")

        # -- the hits, ranked by library-wide E-value ------------------------
        print(f"\n{'model':>8} {'sequence':>12} {'fwd bits':>9} "
              f"{'E-value':>10}")
        for h in results.hits:
            print(f"{h.model_name:>8} {h.sequence_name:>12} "
                  f"{h.fwd_bits:9.2f} {h.evalue:10.2e}")

        # -- how the scheduler batched the library ---------------------------
        print(f"\nmemconfig crossover at M={results.crossover}")
        for b in results.bucket_stats:
            print(f"  bucket '{b['key']}' [{b['config']}]: "
                  f"{b['models']} models in {b['launches']} launch(es), "
                  f"largest co-scheduled group: {b['coscheduled']}")


if __name__ == "__main__":
    main()
