"""Multi-GPU scaling study (paper Section IV.A, Figure 11).

Run with::

    python examples/multigpu_scaling.py

Partitions a database across 1-4 simulated GTX 580s by residue share,
verifies the partitioning preserves every sequence, and reports the
modelled end-to-end scaling - near-linear, because the database sweep has
no inter-device dependencies.
"""

import numpy as np

from repro import (
    FERMI_GTX580,
    Stage,
    StageWork,
    best_gpu_stage_time,
    cpu_stage_time,
    sample_hmm,
    swissprot_like,
)


def main() -> None:
    rng = np.random.default_rng(99)
    hmm = sample_hmm(400, rng, name="demo-400")
    database = swissprot_like(400, rng, hmm=hmm)
    print(f"query: {hmm}   targets: {database}")

    # --- the partitioning itself ---
    for n_devices in (2, 4):
        chunks = database.chunk_by_residues(n_devices)
        shares = [c.total_residues / database.total_residues for c in chunks]
        assert sum(len(c) for c in chunks) == len(database)
        print(
            f"\n{n_devices} devices -> residue shares: "
            + ", ".join(f"{s:.1%}" for s in shares)
        )

    # --- modelled scaling at Swissprot scale ---
    scale = 171_731_281 / database.total_residues
    work = StageWork(
        rows=int(database.total_residues * scale),
        seqs=int(len(database) * scale),
        M=hmm.M,
    )
    t_cpu = cpu_stage_time(Stage.MSV, work)
    print(f"\nCPU MSV stage at Swissprot scale: {t_cpu:.1f}s")
    print(f"{'devices':>8} {'time':>8} {'speedup':>8} {'efficiency':>10}")
    t1 = None
    for n in (1, 2, 3, 4):
        share = StageWork(
            rows=work.rows // n, seqs=max(1, work.seqs // n), M=work.M
        )
        t_dev = best_gpu_stage_time(Stage.MSV, share, FERMI_GTX580).seconds
        t_total = t_dev + n * 1e-3  # dispatch overhead per device
        if t1 is None:
            t1 = t_total
        print(
            f"{n:>8} {t_total:>7.1f}s {t_cpu / t_total:>7.1f}x "
            f"{t1 / (n * t_total):>9.0%}"
        )


if __name__ == "__main__":
    main()
