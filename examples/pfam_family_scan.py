"""Protein-family scan: sensitivity of the filter pipeline.

Run with::

    python examples/pfam_family_scan.py

Emulates the paper's motivating workload: scanning a database for members
of protein families of Pfam-representative sizes.  For each family we
build the model from a seed alignment of emitted members (as ``hmmbuild``
would), search a database seeded with *other* members of the same family,
and report per-family sensitivity and false-positive counts - showing
that the byte/word-quantized filter pipeline loses none of the planted
homologs at these score margins.
"""

import numpy as np

from repro import (
    AMINO,
    DigitalSequence,
    HmmsearchPipeline,
    SequenceDatabase,
    build_hmm_from_msa,
    random_sequence_codes,
    sample_hmm,
)

FAMILY_SIZES = (48, 100, 200)
SEED_MEMBERS = 15
PLANTED_MEMBERS = 6
DECOYS = 250


def emit_member(truth, rng) -> str:
    return "".join(AMINO.symbols[c] for c in truth.sample_sequence(rng))


def main() -> None:
    rng = np.random.default_rng(2015)
    print(f"{'family':>10} {'M':>6} {'hits':>5} {'sens':>6} {'FP':>4}")
    for size in FAMILY_SIZES:
        # the "true" family generator
        truth = sample_hmm(size, rng, name=f"PF{size:05d}", conservation=25.0)

        # build a model from a seed alignment of emitted members
        members = [emit_member(truth, rng) for _ in range(SEED_MEMBERS)]
        width = max(len(m) for m in members)
        msa = [m + "-" * (width - len(m)) for m in members]
        model = build_hmm_from_msa(msa, name=truth.name)

        # target database: decoys plus unseen family members
        seqs = [
            DigitalSequence(
                f"decoy{i}", random_sequence_codes(int(L), rng)
            )
            for i, L in enumerate(rng.integers(60, 400, size=DECOYS))
        ]
        planted = []
        for i in range(PLANTED_MEMBERS):
            name = f"member{i}"
            planted.append(name)
            flank = random_sequence_codes(25, rng)
            seqs.append(
                DigitalSequence(
                    name,
                    np.concatenate(
                        [flank, truth.sample_sequence(rng)]
                    ).astype(np.uint8),
                )
            )
        database = SequenceDatabase(seqs, name=f"scan{size}")

        results = HmmsearchPipeline(
            model, L=int(database.mean_length)
        ).search(database)
        found = set(results.hit_names())
        sensitivity = len(found.intersection(planted)) / len(planted)
        false_pos = len(found.difference(planted))
        print(
            f"{model.name:>10} {model.M:>6} {len(found):>5} "
            f"{sensitivity:>6.0%} {false_pos:>4}"
        )


if __name__ == "__main__":
    main()
