"""Batch search service demo: queue, device pool, cache, metrics.

Run with::

    python examples/batch_service.py

Submits ten hmmsearch jobs - repeat queries, mixed engines, mixed
priorities - to the batch service on a heterogeneous Kepler + Fermi
device pool, then prints the service metrics report: per-stage survivor
funnels aggregated over every job, per-device dispatch shares, and the
pipeline-cache hit rate that shows repeat queries skipping calibration.
Finally a fault drill: a device is armed to fail its next launch, and
the job transparently degrades to the CPU engine with identical hits.
"""

import numpy as np

from repro import Engine, sample_hmm, swissprot_like
from repro.service import BatchSearchService, DevicePool, PipelineSettings


def main() -> None:
    rng = np.random.default_rng(7)
    families = {
        name: sample_hmm(M, rng, name=name)
        for name, M in (("globin-like", 60), ("kinase-like", 90))
    }
    databases = {
        name: swissprot_like(100, rng, hmm=hmm)
        for name, hmm in families.items()
    }
    settings = PipelineSettings(
        L=150, calibration_filter_sample=120, calibration_forward_sample=40
    )

    service = BatchSearchService(pool=DevicePool.heterogeneous(2, 2))
    print(f"service: {service.pool.name}, cache for "
          f"{service.cache.max_entries} pipelines\n")

    # 10 jobs: every family queried repeatedly, plus CPU and urgent jobs
    for round_no in range(3):
        for name, hmm in families.items():
            service.submit(hmm, databases[name], settings=settings)
    for name, hmm in families.items():
        service.submit(hmm, databases[name], engine=Engine.CPU_SSE,
                       settings=settings)
        service.submit(hmm, databases[name], priority=10, settings=settings)

    jobs = service.run()
    done = [j for j in jobs if j.results is not None]
    print(f"ran {len(jobs)} jobs, {len(done)} completed")
    # priority-10 jobs ran before everything submitted earlier
    print(f"first job executed: {jobs[0].job_id} "
          f"(priority {jobs[0].priority})")
    print()
    print(service.metrics.render())

    # --- fault drill: device failure degrades to the CPU engine ---
    print("\nfault drill")
    print("-" * 11)
    hmm = families["globin-like"]
    db = databases["globin-like"]
    clean = service.cache.get(hmm, settings).search(db, engine=Engine.CPU_SSE)
    drill = BatchSearchService(pool=DevicePool.homogeneous(count=2))
    drill.pool.slots[0].inject_fault()
    job = drill.submit(hmm, db, settings=settings)
    drill.run()
    assert job.fallback_engine is Engine.CPU_SSE
    assert job.results.hit_names() == clean.hit_names()
    print(f"{job.job_id}: LaunchError on dev0 -> retried on "
          f"{job.effective_engine.value}, {job.attempts} attempts, "
          f"hits identical to the fault-free run "
          f"({len(job.results.hits)} hits)")


if __name__ == "__main__":
    main()
