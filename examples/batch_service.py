"""Batch search service demo: queue, device pool, cache, metrics.

Run with::

    python examples/batch_service.py [--selfcheck N]

Submits ten hmmsearch jobs - repeat queries, mixed engines, mixed
priorities - to the batch service on a heterogeneous Kepler + Fermi
device pool, then prints the service metrics report: per-stage survivor
funnels aggregated over every job, per-device dispatch shares, and the
pipeline-cache hit rate that shows repeat queries skipping calibration.
Finally a fault drill: a device is armed to fail its next launch, and
the job transparently degrades to the CPU engine with identical hits.

Then two resilience drills: a *chaos drill* arms a seeded deterministic
fault plan (launch failures, kernel faults, hangs, corrupted shards)
and shows the shard-level degradation ladder absorbing every fault with
bit-identical hits; a *checkpoint/resume drill* kills a batch run
mid-way and resumes it from its journal without recomputing the
finished job.

``--selfcheck N`` arms the runtime differential oracle on every job:
N sequences per search are shadow-scored through the scalar reference
engines and any divergence is reported (the CI smoke job runs this
under a seeded fault plan).  A final *salvage drill* feeds a corrupted
FASTA through salvage-mode ingestion and shows the quarantine report.
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BatchSearchService,
    DevicePool,
    Engine,
    FaultPlan,
    PipelineSettings,
    RecordQuarantine,
    RunJournal,
    SALVAGE,
    read_fasta,
    sample_hmm,
    swissprot_like,
    write_fasta,
)


def main(selfcheck: int = 0) -> None:
    # a global REPRO_FAULT_SEED plan (the CI smoke job) reroutes fault
    # handling through the resilient executor, which absorbs the legacy
    # whole-job drill's launch fault at shard level instead
    env_plan = FaultPlan.from_env()
    rng = np.random.default_rng(7)
    families = {
        name: sample_hmm(M, rng, name=name)
        for name, M in (("globin-like", 60), ("kinase-like", 90))
    }
    databases = {
        name: swissprot_like(100, rng, hmm=hmm)
        for name, hmm in families.items()
    }
    settings = PipelineSettings(
        L=150, calibration_filter_sample=120, calibration_forward_sample=40
    )

    service = BatchSearchService(
        pool=DevicePool.heterogeneous(2, 2), selfcheck=selfcheck
    )
    print(f"service: {service.pool.name}, cache for "
          f"{service.cache.max_entries} pipelines"
          + (f", selfcheck={selfcheck}" if selfcheck else "") + "\n")

    # 10 jobs: every family queried repeatedly, plus CPU and urgent jobs
    for round_no in range(3):
        for name, hmm in families.items():
            service.submit(hmm, databases[name], settings=settings)
    for name, hmm in families.items():
        service.submit(hmm, databases[name], engine=Engine.CPU_SSE,
                       settings=settings)
        service.submit(hmm, databases[name], priority=10, settings=settings)

    jobs = service.run()
    done = [j for j in jobs if j.results is not None]
    print(f"ran {len(jobs)} jobs, {len(done)} completed")
    # priority-10 jobs ran before everything submitted earlier
    print(f"first job executed: {jobs[0].job_id} "
          f"(priority {jobs[0].priority})")
    print()
    print(service.metrics.render())

    # --- fault drill: device failure degrades to the CPU engine ---
    print("\nfault drill")
    print("-" * 11)
    hmm = families["globin-like"]
    db = databases["globin-like"]
    clean = service.cache.get(hmm, settings).search(db, engine=Engine.CPU_SSE)
    drill = BatchSearchService(pool=DevicePool.homogeneous(count=2))
    drill.pool.slots[0].inject_fault()
    job = drill.submit(hmm, db, settings=settings)
    drill.run()
    if env_plan is None:
        # legacy path: the whole job degrades to the CPU engine
        assert job.fallback_engine is Engine.CPU_SSE
    assert job.results.hit_names() == clean.hit_names()
    print(f"{job.job_id}: LaunchError on dev0 -> recovered on "
          f"{job.effective_engine.value}, {job.attempts} attempt(s), "
          f"hits identical to the fault-free run "
          f"({len(job.results.hits)} hits)")

    # --- chaos drill: seeded fault plan, shard-level recovery ---
    print("\nchaos drill")
    print("-" * 11)
    plan = FaultPlan.seeded(2026, n_faults=4, n_devices=4)
    print(plan.describe())
    chaos = BatchSearchService(
        pool=DevicePool.heterogeneous(2, 2), fault_plan=plan
    )
    chaos_jobs = [
        chaos.submit(hmm, db, settings=settings) for _ in range(8)
    ]
    chaos.run()
    stats = chaos.metrics.resilience
    for cjob in chaos_jobs:
        assert cjob.results.hit_names() == clean.hit_names()
    assert stats.total_faults == plan.fired_count
    assert stats.fault_responses == stats.total_faults
    print(f"fired {plan.fired_count} fault(s); responses: "
          f"{stats.total_retries} retried on-device, "
          f"{stats.repartitions} repartitioned, "
          f"{stats.cpu_shard_fallbacks} shard CPU fallbacks; "
          f"quarantines: {stats.quarantines}")
    print(f"all {len(chaos_jobs)} chaos jobs: hits identical to the "
          f"fault-free baseline")

    # --- checkpoint/resume drill: kill a batch mid-way, resume it ---
    print("\ncheckpoint/resume drill")
    print("-" * 23)
    with tempfile.TemporaryDirectory() as tmp:
        jpath = Path(tmp) / "run.jsonl"
        first = BatchSearchService(
            pool=DevicePool.heterogeneous(2, 2),
            journal=RunJournal(jpath, resume=False),
        )
        for name, fam in families.items():
            first.submit(fam, databases[name], settings=settings,
                         job_id=f"demo-{name}")
        # simulate a crash: execute one job, abandon the rest
        done_job = first.scheduler.execute(first.queue.pop())
        print(f"'crash' after {done_job.job_id}: journal holds "
              f"{len(first.journal)} of 2 jobs")
        second = BatchSearchService(
            pool=DevicePool.heterogeneous(2, 2),
            journal=RunJournal(jpath, resume=True),
        )
        for name, fam in families.items():
            second.submit(fam, databases[name], settings=settings,
                          job_id=f"demo-{name}")
        second.run()
        assert second.metrics.resumed_jobs == 1
        assert second.metrics.recomputed_jobs == 1
        print(f"resumed run: {second.metrics.resumed_jobs} job restored "
              f"from the journal, {second.metrics.recomputed_jobs} "
              f"recomputed; journal now holds {len(second.journal)} jobs")

    if selfcheck:
        assert service.metrics.total_selfchecked > 0
        assert service.metrics.total_divergences == 0
        print(f"\nselfcheck: {service.metrics.total_selfchecked} "
              f"sequence(s) shadow-scored against the scalar reference, "
              f"0 divergences")

    # --- salvage drill: corrupted FASTA -> quarantine, not an abort ---
    print("\nsalvage drill")
    print("-" * 13)
    with tempfile.TemporaryDirectory() as tmp:
        dirty = Path(tmp) / "dirty.fasta"
        write_fasta(dirty, databases["globin-like"])
        with dirty.open("a") as fh:
            fh.write(">corrupt-1\nAC1DEF\n>\nGHIKL\n")
        quarantine = RecordQuarantine()
        salvaged = read_fasta(dirty, policy=SALVAGE, quarantine=quarantine)
        assert len(salvaged) == len(databases["globin-like"])
        assert len(quarantine) == 2
        print(f"salvaged {len(salvaged)} of {len(salvaged) + 2} records")
        for line in quarantine.render_lines():
            print(line)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--selfcheck", type=int, default=0, metavar="N",
        help="shadow-score N sequences per job through the scalar "
             "reference engines (differential oracle)",
    )
    main(selfcheck=parser.parse_args().selfcheck)
