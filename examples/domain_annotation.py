"""Domain annotation via posterior decoding.

Run with::

    python examples/domain_annotation.py

After the filter pipeline identifies a hit, the full HMMER pipeline
decodes *where* in the sequence the model aligns.  This example plants
two copies of a domain in one protein, decodes the per-residue homology
posterior with exact Forward/Backward, and renders the domain calls.
"""

import numpy as np

from repro import (
    SearchProfile,
    domain_regions,
    posterior_decode,
    random_sequence_codes,
    sample_hmm,
)


def render_track(homology: np.ndarray, width: int = 100) -> str:
    """ASCII rendering of the homology posterior."""
    bins = np.array_split(homology, width)
    glyphs = " .:-=+*#%@"
    return "".join(
        glyphs[min(int(b.mean() * (len(glyphs) - 1) + 0.5), len(glyphs) - 1)]
        for b in bins
    )


def main() -> None:
    rng = np.random.default_rng(11)
    hmm = sample_hmm(60, rng, name="demo-domain", conservation=30.0)
    profile = SearchProfile(hmm, L=300)

    # a two-domain protein: flank + domain + linker + domain + flank
    parts = [
        random_sequence_codes(45, rng),
        hmm.sample_sequence(rng),
        random_sequence_codes(60, rng),
        hmm.sample_sequence(rng),
        random_sequence_codes(35, rng),
    ]
    codes = np.concatenate(parts).astype(np.uint8)
    bounds = np.cumsum([len(p) for p in parts])
    print(f"protein of {codes.size} residues; true domains at "
          f"[{bounds[0]}, {bounds[1]}) and [{bounds[2]}, {bounds[3]})")

    decoding = posterior_decode(profile, codes)
    print(f"forward score: {decoding.score:.2f} nats; expected aligned "
          f"residues: {decoding.expected_aligned_residues():.1f}")

    print("\nhomology posterior (one glyph ~ "
          f"{codes.size / 100:.1f} residues):")
    print(render_track(decoding.homology))

    print("\ndomain calls (posterior >= 0.5):")
    for lo, hi in domain_regions(decoding):
        mean_p = decoding.homology[lo:hi].mean()
        print(f"  residues [{lo:4d}, {hi:4d})  mean posterior {mean_p:.2f}")


if __name__ == "__main__":
    main()
