"""Quickstart: build a profile HMM and search a sequence database.

Run with::

    python examples/quickstart.py

Builds a Plan-7 model from a toy multiple sequence alignment (the way
``hmmbuild`` would), writes it to disk, generates a small synthetic
protein database with a few true family members planted in it, and runs
the full three-stage hmmsearch pipeline (MSV -> P7Viterbi -> Forward).
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    HmmsearchPipeline,
    build_hmm_from_msa,
    homolog_database,
    load_hmm,
    save_hmm,
)

# A toy seed alignment of a short, well-conserved motif family.
SEED_ALIGNMENT = [
    "WKLGDEAVQ-RLCHAY",
    "WKLGDEAVQPRLCHAY",
    "WKMGDEAIQPRLCHAF",
    "WKLGDKAVQPRLCNAY",
    "WRLGDEAVQP-LCHAY",
    "WKLGEEAVRPRLCHAY",
    "WKLGDEAVQPKLCHAY",
]


def main() -> None:
    # 1. build the query model from the alignment
    hmm = build_hmm_from_msa(SEED_ALIGNMENT, name="toy-motif")
    print(f"built {hmm} with consensus {hmm.consensus!r}")

    # 2. model files round-trip like HMMER's .hmm flat files
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "toy.hmm"
        save_hmm(path, hmm)
        hmm = load_hmm(path)
        print(f"model round-tripped through {path.name}")

    # 3. a synthetic target database: mostly random proteins plus 2% that
    #    really contain the motif
    rng = np.random.default_rng(42)
    database = homolog_database(
        400,
        mean_length=180,
        rng=rng,
        hmm=hmm,
        homolog_fraction=0.02,
        name="targets",
    )
    print(f"searching {database}")

    # 4. the hmmsearch pipeline: calibration is automatic and cached on
    #    the pipeline object, so repeated searches are cheap
    pipeline = HmmsearchPipeline(hmm, L=int(database.mean_length))
    results = pipeline.search(database)
    print()
    print(results.summary())

    planted = [s.name for s in database if s.description == "homolog"]
    found = set(results.hit_names())
    print()
    print(f"planted homologs: {len(planted)}, recovered: "
          f"{len(found.intersection(planted))}, false positives: "
          f"{len(found.difference(planted))}")


if __name__ == "__main__":
    main()
